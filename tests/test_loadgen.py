"""Unit tests for the load-generation subsystem.

The load generator's contract is determinism: the same (population,
skew, seed) replays the identical request stream, so a throughput
number in ``BENCH_serve.json`` — or an overload incident — can be
reproduced request for request.
"""

import json

import pytest

from repro.core.study import MECHANISMS
from repro.loadgen.report import (
    append_record,
    build_record,
    check_concurrency_sanity,
    check_throughput_regression,
    check_worker_scaling,
    load_trajectory,
    render_record,
    render_trajectory,
)
from repro.loadgen.stats import (
    ERROR,
    OK,
    SHED,
    LatencyRecorder,
    Sample,
    percentiles,
    summarize,
)
from repro.loadgen.workload import (
    GRID_CONFIGS,
    ReqGenEngine,
    Workload,
    grid_population,
)
from repro.workloads.registry import list_workloads


class TestReqGenEngine:
    def test_same_seed_replays_identical_stream(self):
        first = ReqGenEngine(100, skew="zipf", theta=0.99, seed=7)
        second = ReqGenEngine(100, skew="zipf", theta=0.99, seed=7)
        assert first.sample(500) == second.sample(500)
        assert first.emitted == second.emitted == 500

    def test_different_seed_diverges(self):
        first = ReqGenEngine(100, seed=1)
        second = ReqGenEngine(100, seed=2)
        assert first.sample(200) != second.sample(200)

    def test_zipf_concentrates_on_hot_slots(self):
        engine = ReqGenEngine(50, skew="zipf", theta=1.2, seed=3)
        draws = engine.sample(5000)
        counts = sorted(
            (draws.count(slot) for slot in set(draws)), reverse=True
        )
        # Rank-1 weight under Zipf(1.2) over 50 slots is ~22% of mass;
        # a uniform stream would put 2% on every slot.
        assert counts[0] > 3 * (5000 / 50)

    def test_uniform_covers_the_population(self):
        engine = ReqGenEngine(20, skew="uniform", seed=0)
        assert set(engine.sample(2000)) == set(range(20))

    def test_theta_zero_degenerates_to_uniform(self):
        engine = ReqGenEngine(20, skew="zipf", theta=0.0, seed=0)
        draws = engine.sample(2000)
        counts = [draws.count(slot) for slot in range(20)]
        assert max(counts) < 3 * min(counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReqGenEngine(0)
        with pytest.raises(ValueError):
            ReqGenEngine(10, skew="pareto")
        with pytest.raises(ValueError):
            ReqGenEngine(10, theta=-0.1)


class TestWorkload:
    def test_grid_population_covers_the_paper_grid(self):
        population = grid_population()
        expected = (
            len(list_workloads()) * len(GRID_CONFIGS) * len(MECHANISMS)
        )
        assert len(population) == expected
        assert len({request.label for request in population}) == expected
        body = population[0].body
        assert body["workload"] and body["config"] in GRID_CONFIGS
        assert body["mechanism"] in MECHANISMS

    def test_stamping_carries_index_and_trace_id(self):
        workload = Workload.grid(seed=5)
        first, second = workload.take(2)
        assert (first.index, second.index) == (0, 1)
        assert first.trace_id == "lg-5-00000000"
        assert second.trace_id == "lg-5-00000001"

    def test_same_stream_seed_replays_identical_requests(self):
        a = Workload.grid(skew="zipf", theta=0.99, seed=11)
        b = Workload.grid(skew="zipf", theta=0.99, seed=11)
        for left, right in zip(a.take(300), b.take(300)):
            assert left == right

    def test_describe_names_the_stream_identity(self):
        workload = Workload.grid(skew="uniform", seed=9)
        described = workload.describe()
        assert described["skew"] == "uniform"
        assert described["stream_seed"] == 9
        assert described["population"] == len(workload.population)


def _sample(latency, status=200, outcome=OK, phase="measure"):
    return Sample(
        index=0,
        started_at=0.0,
        latency=latency,
        status=status,
        outcome=outcome,
        phase=phase,
    )


class TestStats:
    def test_percentiles_of_known_values(self):
        values = [i / 1000.0 for i in range(1, 1001)]
        tails = percentiles(values)
        assert tails["p50"] == pytest.approx(0.5, abs=1e-3)
        assert tails["p99"] == pytest.approx(0.99, abs=1e-3)
        assert tails["p999"] == pytest.approx(0.999, abs=1e-3)
        assert percentiles([]) == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "p999": 0.0
        }

    def test_summarize_counts_outcomes_and_excludes_warmup(self):
        recorder = LatencyRecorder()
        recorder.record(_sample(9.0, phase="warmup"))
        for _ in range(8):
            recorder.record(_sample(0.010))
        recorder.record(_sample(0.001, status=429, outcome=SHED))
        recorder.record(_sample(0.002, status=0, outcome=ERROR))
        summary = summarize(recorder, measure_seconds=2.0)
        assert summary["requests"] == 10
        assert summary["completed"] == 8
        assert summary["throughput_rps"] == pytest.approx(4.0)
        assert summary["offered_rps"] == pytest.approx(5.0)
        assert summary["outcomes"] == {ERROR: 1, OK: 8, SHED: 1}
        assert summary["statuses"] == {"0": 1, "200": 8, "429": 1}
        # The warmup-phase 9s outlier must not pollute the tails.
        assert summary["latency_seconds"]["p999"] < 1.0
        # No worker attribution recorded → no workers_served key.
        assert "workers_served" not in summary

    def test_summarize_counts_serving_workers(self):
        recorder = LatencyRecorder()
        for worker in ("0", "1", "1"):
            sample = _sample(0.01)
            recorder.record(
                Sample(**{**sample.__dict__, "worker": worker})
            )
        summary = summarize(recorder, measure_seconds=1.0)
        assert summary["workers_served"] == {"0": 1, "1": 2}


class TestReport:
    def _record(self, throughput):
        recorder = LatencyRecorder()
        for _ in range(10):
            recorder.record(_sample(0.01))
        summary = summarize(recorder, measure_seconds=10.0 / throughput)
        return build_record(
            "serve_closed_grid",
            summary,
            workload_meta={"skew": "zipf", "theta": 0.99,
                           "stream_seed": 0, "population": 10},
            run_meta={"mode": "closed", "clients": 4},
        )

    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        assert load_trajectory(path) == []
        assert append_record(self._record(100.0), path) == 1
        assert append_record(self._record(120.0), path) == 2
        trajectory = load_trajectory(path)
        assert [r["throughput_rps"] for r in trajectory] == [100.0, 120.0]
        assert all(r["benchmark"] == "serve_closed_grid" for r in trajectory)

    def test_regression_gate(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        # Fresh benchmark: no history, no gate.
        assert check_throughput_regression(
            self._record(100.0), path, 0.8) is None
        append_record(self._record(100.0), path)
        assert check_throughput_regression(
            self._record(90.0), path, 0.8) is None
        message = check_throughput_regression(self._record(50.0), path, 0.8)
        assert message is not None and "regressed" in message

    def _speedup_record(self, speedup, throughput=100.0):
        record = self._record(throughput)
        record["reference_throughput_rps"] = throughput / speedup
        record["concurrency_speedup"] = speedup
        return record

    def test_concurrency_sanity_gate(self):
        """The CI gate checks the within-run concurrency speedup
        against a fixed floor — machine-independent, never absolute
        req/s across machines, never a committed record's ratio."""
        assert check_concurrency_sanity(self._speedup_record(1.1), 0.8) is None
        assert check_concurrency_sanity(self._speedup_record(0.8), 0.8) is None
        # A slow *absolute* run with healthy concurrency passes: the
        # runner is just slower hardware.
        assert check_concurrency_sanity(
            self._speedup_record(1.1, throughput=10.0), 0.8) is None
        message = check_concurrency_sanity(self._speedup_record(0.5), 0.8)
        assert message is not None and "concurrency sanity failed" in message

    def test_concurrency_sanity_requires_speedup_field(self):
        message = check_concurrency_sanity(self._record(100.0), 0.8)
        assert message is not None and "concurrency_speedup" in message

    def _worker_record(self, speedup, throughput=100.0):
        record = self._record(throughput)
        record["workers"] = 2
        record["single_worker_throughput_rps"] = throughput / speedup
        record["worker_speedup"] = speedup
        return record

    def test_worker_scaling_gate(self):
        """Same discipline as the concurrency gate: the within-run
        multi-worker / single-worker ratio against a fixed floor —
        never absolute req/s across machines."""
        assert check_worker_scaling(self._worker_record(1.8), 1.2) is None
        assert check_worker_scaling(self._worker_record(1.2), 1.2) is None
        # Slow hardware with healthy scaling passes.
        assert check_worker_scaling(
            self._worker_record(1.8, throughput=10.0), 1.2) is None
        message = check_worker_scaling(self._worker_record(1.0), 1.2)
        assert message is not None and "worker scaling failed" in message
        assert "2 workers" in message

    def test_worker_scaling_requires_speedup_field(self):
        message = check_worker_scaling(self._record(100.0), 1.2)
        assert message is not None and "worker_speedup" in message

    def test_gate_matches_on_benchmark_name(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        other = dict(self._record(1000.0), benchmark="serve_open_grid")
        append_record(other, path)
        # A slow run of a *different* benchmark is not gated by it.
        assert check_throughput_regression(
            self._record(10.0), path, 0.8) is None

    def test_rejects_non_trajectory_file(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ValueError):
            load_trajectory(path)

    def test_rendering_smoke(self, tmp_path):
        record = self._record(100.0)
        text = render_record(record)
        assert "serve_closed_grid" in text and "req/s" in text
        assert render_trajectory([]) == "no records"
        assert "serve_closed_grid" in render_trajectory([record])
