"""Unit tests for the CPI model."""

import pytest

from repro.core.cpi import CpiBreakdown, cpi_instr


class TestCpiInstr:
    def test_factored_model(self):
        assert cpi_instr(0.0479, 7) == pytest.approx(0.3353)

    def test_zero_miss_rate(self):
        assert cpi_instr(0.0, 100) == 0.0

    @pytest.mark.parametrize("mpi,cpm", [(-0.1, 5), (0.1, -5)])
    def test_rejects_negative(self, mpi, cpm):
        with pytest.raises(ValueError):
            cpi_instr(mpi, cpm)


class TestCpiBreakdown:
    def test_totals(self):
        breakdown = CpiBreakdown(
            instr_l1=0.3, instr_l2=0.2, data=0.1, write=0.05, tlb=0.05
        )
        assert breakdown.cpi_instr == pytest.approx(0.5)
        assert breakdown.memory_cpi == pytest.approx(0.7)
        assert breakdown.total == pytest.approx(1.7)

    def test_defaults(self):
        breakdown = CpiBreakdown()
        assert breakdown.total == 1.0
        assert breakdown.memory_cpi == 0.0

    def test_scaled(self):
        breakdown = CpiBreakdown(instr_l1=0.4, data=0.2)
        half = breakdown.scaled(0.5)
        assert half.instr_l1 == pytest.approx(0.2)
        assert half.data == pytest.approx(0.1)
        assert half.base == 1.0

    def test_dual_issue_interpretation(self):
        """The paper: a dual-issue machine has base CPI 0.5, making the
        0.18 instruction-fetch floor proportionally worse."""
        single = CpiBreakdown(instr_l1=0.18)
        dual = CpiBreakdown(instr_l1=0.18, base=0.5)
        assert dual.cpi_instr / dual.total > single.cpi_instr / single.total
