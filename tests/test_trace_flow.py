"""Unit tests for control-flow statistics."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.trace.flow import flow_stats, miss_sequentiality
from repro.trace.record import Component, RefKind
from repro.trace.trace import Trace


def _ifetch_trace(addresses):
    n = len(addresses)
    return Trace(
        np.asarray(addresses, dtype=np.uint64),
        np.full(n, RefKind.IFETCH, dtype=np.uint8),
        np.full(n, Component.USER, dtype=np.uint8),
    )


class TestFlowStats:
    def test_pure_sequential(self):
        stats = flow_stats(_ifetch_trace(np.arange(0, 400, 4)))
        assert stats.taken_rate == 0.0
        assert stats.mean_block == pytest.approx(100.0)

    def test_alternating_jump(self):
        # 0, 4, 1000, 1004, 0, 4, ... : every other transition taken.
        addresses = []
        for _ in range(50):
            addresses += [0, 4, 1000, 1004]
        stats = flow_stats(_ifetch_trace(addresses))
        assert stats.taken_rate == pytest.approx(0.5, abs=0.02)
        assert stats.mean_block == pytest.approx(2.0, abs=0.1)

    def test_backward_fraction(self):
        # A 3-instruction loop: back-edge every 3rd fetch.
        addresses = [0, 4, 8] * 30
        stats = flow_stats(_ifetch_trace(addresses))
        assert stats.backward_fraction == pytest.approx(1.0)
        assert stats.median_displacement == 8.0

    def test_short_jump_fraction(self):
        addresses = [0, 64, 0x100000, 0x100040] * 20
        stats = flow_stats(_ifetch_trace(addresses))
        # jumps: +60? no: deltas 64, big, 64... short (<=256) = 2/3.
        assert 0.5 < stats.short_jump_fraction < 0.8

    def test_degenerate(self):
        stats = flow_stats(_ifetch_trace([0]))
        assert stats.fetches == 1
        assert stats.taken_rate == 0.0

    def test_describe(self, medium_trace):
        text = flow_stats(medium_trace).describe()
        assert "taken-transfer rate" in text

    def test_synthetic_traces_plausible(self, medium_trace, spec_trace):
        ibs = flow_stats(medium_trace)
        spec = flow_stats(spec_trace)
        assert 0.03 < ibs.taken_rate < 0.5
        # SPEC's longer loops give longer basic-block runs on average.
        assert spec.mean_block > 0


class TestMissSequentiality:
    def test_sequential_stream_is_fully_sequential(self):
        trace = _ifetch_trace(np.arange(0, 65536, 4))
        geometry = CacheGeometry(1024, 32, 1)
        assert miss_sequentiality(trace, geometry) == pytest.approx(1.0)

    def test_random_stream_is_not(self):
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 1 << 22, 20000).astype(np.uint64) * 4
        trace = _ifetch_trace(addresses)
        geometry = CacheGeometry(1024, 32, 1)
        assert miss_sequentiality(trace, geometry) < 0.05

    def test_bounds_table8_behaviour(self, medium_trace):
        """The stream buffer's coverage asymptote is the miss-edge
        sequentiality; our IBS traces sit in a plausible band."""
        geometry = CacheGeometry(8192, 16, 1)
        value = miss_sequentiality(medium_trace, geometry)
        assert 0.2 < value < 0.9
