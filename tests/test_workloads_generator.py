"""Unit tests for the trace synthesizer."""

import numpy as np
import pytest

from repro.trace.record import Component, RefKind
from repro.trace.stats import component_mix
from repro.vm.addrspace import REGION_SPAN, AddressSpaceLayout
from repro.workloads.generator import TraceSynthesizer, synthesize_trace
from repro.workloads.registry import get_workload


class TestSynthesize:
    def test_exact_instruction_count(self):
        trace = synthesize_trace(get_workload("gs", "mach3"), 25_000, seed=1)
        assert trace.instruction_count == 25_000

    def test_deterministic(self):
        w = get_workload("verilog", "mach3")
        a = synthesize_trace(w, 20_000, seed=4)
        b = synthesize_trace(w, 20_000, seed=4)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.kinds, b.kinds)

    def test_seeds_differ(self):
        w = get_workload("verilog", "mach3")
        a = synthesize_trace(w, 20_000, seed=1)
        b = synthesize_trace(w, 20_000, seed=2)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            synthesize_trace(get_workload("gs", "mach3"), 0)

    def test_component_mix_matches_spec(self):
        workload = get_workload("mpeg_play", "mach3")
        trace = synthesize_trace(workload, 120_000, seed=2)
        mix = component_mix(trace)
        for component, params in workload.components.items():
            assert mix.get(component, 0.0) == pytest.approx(
                params.exec_fraction, abs=0.06
            )

    def test_instruction_addresses_in_component_regions(self, small_trace):
        layout = AddressSpaceLayout()
        ifetch = small_trace.kinds == RefKind.IFETCH
        addresses = small_trace.addresses[ifetch]
        components = small_trace.components[ifetch]
        for component in np.unique(components):
            base = layout.code_base(Component(int(component)))
            selected = addresses[components == component]
            assert (selected >= base).all()
            assert (selected < base + REGION_SPAN).all()

    def test_instruction_addresses_word_aligned(self, small_trace):
        assert (small_trace.ifetch_addresses() % 4 == 0).all()

    def test_data_follows_instruction_of_same_component(self, small_trace):
        # Each data reference is attributed to the component of the
        # instruction that issued it.
        kinds = small_trace.kinds
        comps = small_trace.components
        data_positions = np.flatnonzero(kinds != RefKind.IFETCH)
        # The preceding reference is always the issuing ifetch.
        assert (comps[data_positions] == comps[data_positions - 1]).all()
        assert (kinds[data_positions - 1] == RefKind.IFETCH).all()

    def test_load_store_rates(self):
        workload = get_workload("gcc", "mach3")
        trace = synthesize_trace(workload, 100_000, seed=3)
        loads = int((trace.kinds == RefKind.LOAD).sum())
        stores = int((trace.kinds == RefKind.STORE).sum())
        assert loads / 100_000 == pytest.approx(workload.load_rate, abs=0.02)
        assert stores / 100_000 == pytest.approx(workload.store_rate, abs=0.02)

    def test_label(self):
        trace = synthesize_trace(get_workload("sdet", "mach3"), 5_000, seed=0)
        assert trace.label == "sdet@mach3"

    def test_synthesizer_object_reusable(self):
        synth = TraceSynthesizer(get_workload("nroff", "mach3"), seed=11)
        a = synth.synthesize(10_000)
        b = synth.synthesize(10_000)
        # Same synthesizer, same seed: identical output.
        assert np.array_equal(a.addresses, b.addresses)

    def test_footprint_grows_with_code_kb(self):
        small = get_workload("jpeg_play", "mach3")
        large = get_workload("groff", "mach3")
        small_trace = synthesize_trace(small, 80_000, seed=1)
        large_trace = synthesize_trace(large, 80_000, seed=1)
        small_lines = len(np.unique(small_trace.ifetch_addresses() >> np.uint64(5)))
        large_lines = len(np.unique(large_trace.ifetch_addresses() >> np.uint64(5)))
        assert large_lines > small_lines
