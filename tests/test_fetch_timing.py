"""Unit tests for the latency/bandwidth timing model."""

import pytest

from repro.fetch.timing import (
    ECONOMY_MEMORY,
    HIGH_PERF_MEMORY,
    L1_L2_INTERFACE,
    MemoryTiming,
)


class TestFillPenalty:
    def test_paper_example(self):
        """Table 5's worked example: 12-cycle latency, 8 B/cycle,
        32-byte line -> 12+1+1+1 = 15 cycles."""
        timing = MemoryTiming(latency=12, bytes_per_cycle=8)
        assert timing.fill_penalty(32) == 15

    def test_single_beat(self):
        timing = MemoryTiming(latency=6, bytes_per_cycle=16)
        assert timing.fill_penalty(16) == 6
        assert timing.fill_penalty(8) == 6  # partial beat still one beat

    def test_economy_32_byte_line(self):
        # 30 + 32/4 - 1 = 37 cycles.
        assert ECONOMY_MEMORY.fill_penalty(32) == 37

    def test_high_perf_32_byte_line(self):
        assert HIGH_PERF_MEMORY.fill_penalty(32) == 15

    def test_l1_l2_interface(self):
        # 6 + 32/16 - 1 = 7.
        assert L1_L2_INTERFACE.fill_penalty(32) == 7

    def test_monotone_in_bytes(self):
        timing = MemoryTiming(latency=5, bytes_per_cycle=8)
        penalties = [timing.fill_penalty(n) for n in (8, 16, 64, 256)]
        assert penalties == sorted(penalties)

    def test_rejects_zero_bytes(self):
        with pytest.raises(ValueError):
            MemoryTiming(6, 16).fill_penalty(0)


class TestCyclesUntilByte:
    def test_first_chunk(self):
        timing = MemoryTiming(latency=6, bytes_per_cycle=16)
        assert timing.cycles_until_byte(0) == 6
        assert timing.cycles_until_byte(15) == 6

    def test_later_chunks(self):
        timing = MemoryTiming(latency=6, bytes_per_cycle=16)
        assert timing.cycles_until_byte(16) == 7
        assert timing.cycles_until_byte(63) == 9

    def test_consistency_with_fill_penalty(self):
        timing = MemoryTiming(latency=10, bytes_per_cycle=4)
        # The last byte of an n-byte transfer arrives exactly at the
        # fill penalty.
        for n in (4, 8, 32, 128):
            assert timing.cycles_until_byte(n - 1) == timing.fill_penalty(n)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MemoryTiming(6, 16).cycles_until_byte(-1)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(latency=0, bytes_per_cycle=4),
        dict(latency=5, bytes_per_cycle=0),
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            MemoryTiming(**kwargs)
