"""Unit tests for run manifests (``repro.obs.manifest``)."""

from __future__ import annotations

import json

import pytest

from repro.obs import tracing
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_provenance,
    load_manifest,
    manifest_filename,
    provenance,
    write_manifest,
)


def _traced_recorder():
    with tracing.run("unit", command="test") as recorder:
        with tracing.cell_capture(("w", 1), {"engine": "auto"}):
            pass
    return recorder


class TestProvenance:
    def test_block_shape(self):
        block = provenance()
        assert set(block) == {
            "package_version", "generator_version", "git", "python"
        }
        from repro import package_version
        from repro.workloads.generator import GENERATOR_VERSION

        assert block["package_version"] == package_version()
        assert block["generator_version"] == GENERATOR_VERSION
        assert set(block["git"]) == {"revision", "describe"}

    def test_git_provenance_of_this_checkout(self):
        git = git_provenance()
        # The repository under test is a git checkout; a detached
        # environment would yield Nones, which is also a valid shape.
        if git["revision"] is not None:
            assert len(git["revision"]) == 40
        # Cached: two calls return equal dicts but not the same object.
        again = git_provenance()
        assert again == git and again is not git


class TestBuildManifest:
    def test_shape_and_rollups(self):
        recorder = _traced_recorder()
        manifest = build_manifest(recorder, extra={"command": "test"})
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["trace_id"] == recorder.trace_id
        assert manifest["label"] == "unit"
        assert manifest["extra"] == {"command": "test"}
        assert manifest["wall_seconds"] > 0.0
        assert len(manifest["spans"]) == 2
        assert len(manifest["cells"]) == 1
        cell = manifest["cells"][0]
        assert cell["key"] == ["w", 1]
        assert cell["attrs"]["engine"] == "auto"

    def test_wall_is_root_span_wall(self):
        recorder = _traced_recorder()
        manifest = build_manifest(recorder)
        roots = [
            span for span in manifest["spans"]
            if span["parent_id"] is None
        ]
        assert manifest["wall_seconds"] == max(
            span["wall_seconds"] for span in roots
        )


class TestReadWrite:
    def test_round_trip(self, tmp_path):
        manifest = build_manifest(_traced_recorder())
        path = write_manifest(manifest, tmp_path / "nested" / "obs")
        assert path.endswith(manifest_filename(manifest))
        loaded = load_manifest(path)
        assert loaded == json.loads(json.dumps(manifest))

    def test_filename_carries_label_and_trace_prefix(self):
        manifest = {"label": "figure6", "trace_id": "a" * 32}
        assert manifest_filename(manifest) == \
            f"manifest-figure6-{'a' * 12}.json"

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a run manifest"):
            load_manifest(path)

    def test_load_rejects_future_schema(self, tmp_path):
        manifest = build_manifest(_traced_recorder())
        manifest["schema"] = MANIFEST_SCHEMA + 1
        path = write_manifest(manifest, tmp_path)
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            load_manifest(path)
