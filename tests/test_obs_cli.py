"""End-to-end tests for ``--obs-dir`` runs and the ``repro obs`` CLI.

One traced experiment run (shared across the class via a module
fixture) feeds every assertion: manifest shape on disk, summary totals
agreeing with the ``--timing-out`` report, chrome-trace export, diff,
and the failure modes on bad input.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.obs.manifest import load_manifest
from repro.runner.timing import TimingReport


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One small traced experiment: its manifest and timing report."""
    root = tmp_path_factory.mktemp("obs")
    timing_path = root / "timing.json"
    code = main(
        [
            "--instructions", "20000",
            "--obs-dir", str(root),
            "--timing-out", str(timing_path),
            "experiment", "table2",
        ]
    )
    assert code == 0
    manifests = sorted(root.glob("manifest-table2-*.json"))
    assert len(manifests) == 1
    return {
        "dir": root,
        "manifest_path": manifests[0],
        "manifest": load_manifest(manifests[0]),
        "timing": TimingReport.read(timing_path),
    }


class TestTracedRun:
    def test_manifest_shape(self, traced_run):
        manifest = traced_run["manifest"]
        assert manifest["label"] == "table2"
        assert len(manifest["trace_id"]) == 32
        assert manifest["extra"]["command"] == "experiment"
        assert manifest["extra"]["settings"]["n_instructions"] == 20000
        assert manifest["provenance"]["generator_version"] >= 2
        names = {span["name"] for span in manifest["spans"]}
        assert {"table2", "experiment", "cell"} <= names
        assert manifest["cells"], "no per-cell rollups"

    def test_spans_share_the_trace_id(self, traced_run):
        manifest = traced_run["manifest"]
        assert {
            span["trace_id"] for span in manifest["spans"]
        } == {manifest["trace_id"]}

    def test_summary_matches_timing_report(self, traced_run):
        # The acceptance bar: the span timeline and the --timing-out
        # report are two views of the same phase observer stream.
        from repro.obs.export import summarize

        summary = summarize(traced_run["manifest"])
        timing_totals = traced_run["timing"].phase_totals
        assert set(summary["phase_totals"]) == set(timing_totals)
        for name, seconds in timing_totals.items():
            assert math.isclose(
                summary["phase_totals"][name], seconds, rel_tol=1e-9
            )


class TestObsCommands:
    def test_summary_renders(self, traced_run, capsys):
        assert main(["obs", "summary", str(traced_run["manifest_path"])]) == 0
        out = capsys.readouterr().out
        assert traced_run["manifest"]["trace_id"] in out
        assert "cells (slowest first):" in out

    def test_summary_json(self, traced_run, capsys):
        code = main(
            ["obs", "summary", str(traced_run["manifest_path"]), "--json"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["span_count"] == len(traced_run["manifest"]["spans"])

    def test_export_chrome_trace(self, traced_run, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "obs", "export", str(traced_run["manifest_path"]),
                "--format", "chrome-trace", "--out", str(out),
            ]
        )
        assert code == 0
        trace = json.loads(out.read_text())
        cells = [
            event for event in trace["traceEvents"]
            if event.get("name") == "cell" and event.get("ph") == "X"
        ]
        assert len(cells) == len(traced_run["manifest"]["cells"])

    def test_export_json_roundtrips_manifest(self, traced_run, capsys):
        code = main(
            [
                "obs", "export", str(traced_run["manifest_path"]),
                "--format", "json",
            ]
        )
        assert code == 0
        exported = json.loads(capsys.readouterr().out)
        assert exported["trace_id"] == traced_run["manifest"]["trace_id"]

    def test_diff_against_itself(self, traced_run, capsys):
        path = str(traced_run["manifest_path"])
        assert main(["obs", "diff", path, path, "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["wall_delta_seconds"] == 0.0
        assert diff["provenance_changed"] == {}

    def test_missing_manifest_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="repro obs:"):
            main(["obs", "summary", str(tmp_path / "nope.json")])

    def test_non_manifest_fails_cleanly(self, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("{}")
        with pytest.raises(SystemExit, match="not a run manifest"):
            main(["obs", "summary", str(junk)])


class TestVersionProvenance:
    def test_reports_generator_and_git(self, capsys):
        from repro import version_info

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        info = version_info()
        assert f"repro {info['package_version']}" in out
        assert f"generator v{info['generator_version']}" in out
        assert "git " in out
