"""Unit tests for TLB simulation."""

import numpy as np
import pytest

from repro.caches.base import ReplacementPolicy
from repro.tlb.tlb import (
    R2000_TLB_ENTRIES,
    Tlb,
    TlbResult,
    simulate_tlb,
)


class TestTlbSequential:
    def test_hit_after_fill(self):
        tlb = Tlb(n_entries=4)
        assert tlb.access(0x1000) is False
        assert tlb.access(0x1ffc) is True  # same page

    def test_capacity_eviction_lru(self):
        tlb = Tlb(n_entries=2, policy=ReplacementPolicy.LRU)
        tlb.access_page(1)
        tlb.access_page(2)
        tlb.access_page(1)  # refresh
        tlb.access_page(3)  # evicts 2
        assert tlb.access_page(1) is True
        assert tlb.access_page(2) is False

    def test_random_replacement_deterministic(self):
        def run(seed):
            tlb = Tlb(n_entries=8, policy=ReplacementPolicy.RANDOM, seed=seed)
            return [tlb.access_page(p % 12) for p in range(100)]

        assert run(3) == run(3)

    def test_miss_ratio(self):
        tlb = Tlb(n_entries=64)
        for page in range(10):
            tlb.access_page(page)
        for page in range(10):
            tlb.access_page(page)
        assert tlb.miss_ratio == pytest.approx(0.5)

    def test_invalidate_all(self):
        tlb = Tlb(n_entries=4)
        tlb.access_page(1)
        tlb.invalidate_all()
        assert tlb.access_page(1) is False

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Tlb(n_entries=0)
        with pytest.raises(ValueError):
            Tlb(page_size=1000)


class TestSimulateTlb:
    def test_matches_sequential_lru(self):
        rng = np.random.default_rng(1)
        addresses = (rng.integers(0, 200, 5000) * 4096 + rng.integers(
            0, 4096, 5000
        )).astype(np.uint64)
        vec = simulate_tlb(addresses, n_instructions=5000, n_entries=64)
        tlb = Tlb(n_entries=64, policy=ReplacementPolicy.LRU)
        seq_misses = sum(
            0 if tlb.access(int(a)) else 1 for a in addresses
        )
        assert vec.misses == seq_misses

    def test_small_working_set_no_misses_after_fill(self):
        addresses = np.tile(
            np.arange(10, dtype=np.uint64) * 4096, 50
        )
        result = simulate_tlb(addresses, n_instructions=500, n_entries=64)
        assert result.misses == 10  # compulsory only

    def test_result_properties(self):
        result = TlbResult(references=1000, misses=10, instructions=500)
        assert result.miss_ratio == pytest.approx(0.01)
        assert result.mpi == pytest.approx(0.02)
        assert result.cpi_contribution(24) == pytest.approx(0.48)

    def test_empty(self):
        result = simulate_tlb(np.zeros(0, np.uint64), n_instructions=0)
        assert result.misses == 0
        assert result.mpi == 0.0

    def test_ibs_misses_more_than_spec(self, medium_trace, spec_trace):
        ibs = simulate_tlb(
            medium_trace.addresses, medium_trace.instruction_count
        )
        spec = simulate_tlb(spec_trace.addresses, spec_trace.instruction_count)
        assert ibs.mpi > spec.mpi

    def test_r2000_default_entries(self):
        assert R2000_TLB_ENTRIES == 64
