"""Smoke tests for the example scripts.

Full runs take tens of seconds each (they use realistic trace lengths),
so tests compile every example and execute only the fastest end to end.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    for expected in (
        "quickstart.py",
        "code_bloat_study.py",
        "fetch_optimization.py",
        "os_variability.py",
        "trace_workshop.py",
        "beyond_the_paper.py",
        "custom_workload.py",
    ):
        assert expected in names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main(path):
    source = path.read_text()
    assert "def main() -> None:" in source
    assert '__name__ == "__main__"' in source
    assert source.startswith('"""')  # every example is documented


def test_quickstart_runs_end_to_end(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert "CPIinstr" in result.stdout
