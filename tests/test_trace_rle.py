"""Unit tests for run-length encoding of line streams."""

import numpy as np
import pytest

from repro.trace.rle import LineRuns, to_line_runs


class TestToLineRuns:
    def test_sequential_stream_collapses(self):
        # 16 sequential instructions at 4-byte stride = 2 runs of 8 in
        # 32-byte lines.
        addresses = np.arange(0, 64, 4, dtype=np.uint64)
        runs = to_line_runs(addresses, 32)
        assert list(runs.lines) == [0, 1]
        assert list(runs.counts) == [8, 8]
        assert runs.total_references == 16

    def test_alternating_lines_do_not_collapse(self):
        addresses = np.array([0, 32, 0, 32], dtype=np.uint64)
        runs = to_line_runs(addresses, 32)
        assert list(runs.lines) == [0, 1, 0, 1]
        assert list(runs.counts) == [1, 1, 1, 1]

    def test_first_offsets(self):
        addresses = np.array([0x14, 0x18, 0x44], dtype=np.uint64)
        runs = to_line_runs(addresses, 32)
        assert list(runs.first_offsets) == [0x14, 0x44 % 32]

    def test_empty(self):
        runs = to_line_runs(np.zeros(0, dtype=np.uint64), 32)
        assert len(runs) == 0
        assert runs.total_references == 0

    def test_single_reference(self):
        runs = to_line_runs(np.array([100], dtype=np.uint64), 16)
        assert list(runs.lines) == [100 >> 4]
        assert list(runs.counts) == [1]

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            to_line_runs(np.array([0], dtype=np.uint64), 33)

    def test_preserves_total_references(self):
        rng = np.random.default_rng(5)
        addresses = rng.integers(0, 1 << 20, 5000).astype(np.uint64) * 4
        runs = to_line_runs(addresses, 32)
        assert runs.total_references == 5000

    def test_miss_equivalence_with_unencoded_stream(self):
        # RLE must not change miss counts: repeats within a line always hit.
        from repro.caches.vectorized import miss_mask_direct_mapped

        rng = np.random.default_rng(9)
        base = rng.integers(0, 512, 300).astype(np.uint64) * 32
        # expand each to a small sequential run
        addresses = np.concatenate(
            [np.arange(a, a + 32, 4, dtype=np.uint64) for a in base]
        )
        full_lines = addresses >> np.uint64(5)
        runs = to_line_runs(addresses, 32)
        assert (
            miss_mask_direct_mapped(full_lines, 128).sum()
            == miss_mask_direct_mapped(runs.lines, 128).sum()
        )


class TestLineRunsValidation:
    def test_misaligned_columns_rejected(self):
        with pytest.raises(ValueError):
            LineRuns(
                lines=np.zeros(2, np.uint64),
                counts=np.zeros(1, np.int64),
                first_offsets=np.zeros(2, np.int64),
                line_size=32,
            )
