"""Admission control, graceful drain, and overload behaviour.

The overload contract: a burst beyond capacity keeps the server
responsive — the queue stays bounded, excess requests get an immediate
429 with a Retry-After hint (never a hang, never a dropped socket),
``/healthz`` reports the shed state, and the server-side admission
counters agree exactly with what the clients observed.
"""

import asyncio
import threading
import time

import pytest

from repro.experiments import table2
from repro.experiments.common import ExperimentSettings
from repro.loadgen.driver import LoadConfig, run_load_async
from repro.loadgen.stats import OK, SHED
from repro.loadgen.workload import Workload
from repro.service.app import _graceful_shutdown
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import AdmissionError, JobScheduler
from repro.service.store import ResultStore

from tests.test_service_http import _json_request, _request_full, _Server

SETTINGS = ExperimentSettings(n_instructions=20_000, seed=0)


class _FakeResult:
    def render(self):
        return "fake rendering"


class _FakeReport:
    wall_seconds = 0.0
    phase_totals = {}


def _block_executor(scheduler, release: threading.Event):
    """Replace the experiment executor body with an event-gated stall.

    Keeps the real started/settled bookkeeping so occupancy gauges and
    Retry-After see the stalled job exactly like a slow real one.
    """

    def stalled(job, name, module, settings):
        scheduler._jobs_started([job.created_at])
        try:
            release.wait(30)
        finally:
            scheduler._jobs_settled(1, 0.05)
        return _FakeResult(), _FakeReport(), None

    scheduler._execute_experiment = stalled


class TestAdmissionBurst:
    def test_closed_loop_burst_sheds_and_loses_nothing(self, tmp_path):
        """ISSUE acceptance: closed-loop burst against a 1-worker server
        with a tiny queue — bounded occupancy, 429s with Retry-After,
        zero requests dropped without a response, and server counters
        consistent with client-observed outcomes."""
        max_requests = 18

        async def body():
            async with _Server(
                tmp_path / "results", max_inflight=1, max_queue=1
            ) as served:
                scheduler = served.app.scheduler
                workload = Workload.grid(
                    skew="uniform",
                    seed=3,
                    n_instructions=SETTINGS.n_instructions,
                    suite_pairs=[("gcc", "mach3")],
                )
                config = LoadConfig(
                    host="127.0.0.1",
                    port=served.port,
                    mode="closed",
                    clients=6,
                    max_requests=max_requests,
                    duration_seconds=60.0,
                )
                peak = 0
                done = asyncio.Event()

                async def monitor():
                    nonlocal peak
                    while not done.is_set():
                        peak = max(peak, scheduler.queue_depth)
                        await asyncio.sleep(0.002)

                watcher = asyncio.ensure_future(monitor())
                result = await run_load_async(workload, config)
                done.set()
                await watcher
                return result, peak, served.app.metrics

        result, peak, metrics = asyncio.run(body())
        samples = result.recorder.samples
        assert len(samples) == max_requests
        # Zero dropped-without-response: every request got a real HTTP
        # status, and nothing but 200/202/429 ever came back.
        assert all(s.status in (200, 202, 429) for s in samples)
        sheds = [s for s in samples if s.outcome == SHED]
        oks = [s for s in samples if s.outcome == OK]
        assert len(sheds) + len(oks) == max_requests
        # 6 clients racing a 1-worker, 1-deep queue must shed.
        assert sheds
        for sample in sheds:
            assert sample.status == 429
            assert sample.retry_after is not None
            assert sample.retry_after >= 1
        # The queue never grew past the admission bound.
        assert peak <= 1 + 1  # max_queue + max_inflight
        # Server-side decisions match the client-observed outcomes.
        shed_count = metrics.counter_value(
            "admission_total", {"decision": "shed"})
        admitted = sum(
            metrics.counter_value("admission_total", {"decision": d})
            for d in ("accepted", "coalesced", "store-hit")
        )
        assert shed_count == len(sheds)
        assert admitted == len(oks)


class TestHealthzOverload:
    def test_healthz_reflects_shedding_and_recovery(self, tmp_path):
        async def body():
            async with _Server(
                tmp_path / "results", max_inflight=1, max_queue=0
            ) as served:
                release = threading.Event()
                _block_executor(served.app.scheduler, release)
                status, job = await _json_request(
                    served.port, "POST", "/v1/experiments",
                    {"experiment": "table2", "instructions": 20_000,
                     "wait": False},
                )
                assert status == 202
                # Wait for the stalled body to occupy the worker.
                for _ in range(200):
                    if served.app.scheduler.inflight_count:
                        break
                    await asyncio.sleep(0.01)
                status, health = await _json_request(
                    served.port, "GET", "/healthz"
                )
                assert status == 200
                # status is pure liveness — it must NOT flap to
                # "shedding" (external checks match "status": "ok");
                # the admission object carries the overload state.
                assert health["status"] == "ok"
                assert health["admission"]["state"] == "shedding"
                assert health["admission"]["inflight"] == 1
                assert health["admission"]["queued"] == 0
                assert health["admission"]["max_inflight"] == 1
                assert health["admission"]["max_queue"] == 0
                assert health["queue_depth"] == 1
                # New distinct work is shed with a Retry-After hint.
                status, headers, _raw = await _request_full(
                    served.port, "POST", "/v1/experiments",
                    {"experiment": "table3", "instructions": 20_000,
                     "wait": False},
                )
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                # Polling the running job is always admitted.
                status, record = await _json_request(
                    served.port, "GET", f"/v1/jobs/{job['id']}"
                )
                assert status == 202 and record["status"] == "running"
                release.set()
                for _ in range(500):
                    status, record = await _json_request(
                        served.port, "GET", f"/v1/jobs/{job['id']}"
                    )
                    if record["status"] != "running":
                        break
                    await asyncio.sleep(0.01)
                assert record["status"] == "done"
                status, health = await _json_request(
                    served.port, "GET", "/healthz"
                )
                assert health["status"] == "ok"
                assert health["admission"]["state"] == "accepting"
                assert health["queue_depth"] == 0

        asyncio.run(body())


@pytest.fixture
def make_scheduler(tmp_path):
    created = []

    def build(**kwargs):
        scheduler = JobScheduler(
            ResultStore(tmp_path / "results"), ServiceMetrics(), **kwargs
        )
        created.append(scheduler)
        return scheduler

    yield build
    for scheduler in created:
        scheduler.close()


class TestSchedulerAdmission:
    def test_store_hits_admitted_while_shedding(self, make_scheduler):
        """A request answerable from the store costs no compute, so it
        is served even when the queue is full."""
        warm = make_scheduler()

        async def fill(scheduler):
            job = await scheduler.submit_experiment(
                "table2", table2, SETTINGS
            )
            await job.wait()
            return job

        asyncio.run(fill(warm))

        cold = make_scheduler(max_inflight=1, max_queue=0)
        release = threading.Event()
        _block_executor(cold, release)

        async def body():
            other = ExperimentSettings(n_instructions=40_000, seed=0)
            blocked = await cold.submit_experiment("table2", table2, other)
            for _ in range(200):
                if cold.inflight_count:
                    break
                await asyncio.sleep(0.01)
            assert cold.admission_state == "shedding"
            # The warmed key sails through the full queue...
            hit = await cold.submit_experiment("table2", table2, SETTINGS)
            assert hit.status == "done" and hit.source == "store"
            # ...while fresh compute sheds.
            third = ExperimentSettings(n_instructions=60_000, seed=0)
            with pytest.raises(AdmissionError) as excinfo:
                await cold.submit_experiment("table2", table2, third)
            assert excinfo.value.retry_after >= 1
            release.set()
            await blocked.wait()
            return hit

        asyncio.run(body())
        assert cold.metrics.counter_value(
            "admission_total", {"decision": "store-hit"}) == 1
        assert cold.metrics.counter_value(
            "admission_total", {"decision": "shed"}) == 1

    def test_shed_job_leaves_no_ghost(self, make_scheduler):
        scheduler = make_scheduler(max_inflight=1, max_queue=0)
        release = threading.Event()
        _block_executor(scheduler, release)

        async def body():
            blocked = await scheduler.submit_experiment(
                "table2", table2, SETTINGS
            )
            other = ExperimentSettings(n_instructions=40_000, seed=0)
            with pytest.raises(AdmissionError):
                await scheduler.submit_experiment("table2", table2, other)
            # The shed submission left no job behind to poll forever.
            shed_ids = [
                job_id for job_id, job in scheduler._jobs.items()
                if job is not blocked
            ]
            assert shed_ids == []
            release.set()
            await blocked.wait()

        asyncio.run(body())


class TestGracefulDrain:
    def test_drain_waits_for_fast_jobs(self, make_scheduler):
        scheduler = make_scheduler(max_inflight=1)

        async def body():
            job = await scheduler.submit_experiment(
                "table2", table2, SETTINGS
            )
            tally = await scheduler.drain(timeout=120)
            return job, tally

        job, tally = asyncio.run(body())
        assert tally == {"finished": 1, "cancelled": 0}
        assert job.status == "done"
        assert scheduler.queue_depth == 0
        assert scheduler.admission_state == "draining"

    def test_drain_cancels_stragglers_and_stops_workers(self, make_scheduler):
        scheduler = make_scheduler(max_inflight=1, max_queue=4)
        release = threading.Event()
        _block_executor(scheduler, release)

        async def body():
            running = await scheduler.submit_experiment(
                "table2", table2, SETTINGS
            )
            queued = await scheduler.submit_experiment(
                "table2", table2,
                ExperimentSettings(n_instructions=40_000, seed=0),
            )
            for _ in range(200):
                if scheduler.inflight_count:
                    break
                await asyncio.sleep(0.01)
            tally = await scheduler.drain(timeout=0.2)
            # Draining sheds new work immediately.
            with pytest.raises(AdmissionError):
                await scheduler.submit_experiment(
                    "table2", table2,
                    ExperimentSettings(n_instructions=60_000, seed=0),
                )
            return running, queued, tally

        running, queued, tally = asyncio.run(body())
        assert tally == {"finished": 0, "cancelled": 2}
        assert running.status == "cancelled"
        assert queued.status == "cancelled"
        assert "cancelled" in running.error
        assert scheduler.queue_depth == 0
        # Releasing the stalled body must not resurrect the job (the
        # terminal-state guard discards the late completion) and the
        # worker threads exit — no orphans.
        release.set()
        deadline = time.time() + 5
        while time.time() < deadline:
            threads = list(scheduler._executor._threads)
            if all(not t.is_alive() for t in threads):
                break
            time.sleep(0.02)
        assert all(not t.is_alive() for t in scheduler._executor._threads)
        assert running.status == "cancelled"


class TestGracefulShutdown:
    def test_shutdown_cannot_hang_on_open_connections(self, tmp_path):
        """The SIGTERM path with live clients must terminate.

        On Python >= 3.12.1 ``Server.wait_closed()`` waits for every
        connection handler — a client blocked in a ``wait`` request or
        an idle keep-alive connection would deadlock a shutdown that
        called it before the drain.  The fixed ordering (drain, then
        close idle transports, then a bounded ``wait_closed``) must
        finish promptly, deliver the blocked waiter its ``cancelled``
        verdict, and EOF the idle client.
        """

        async def body():
            async with _Server(
                tmp_path / "results", max_inflight=1, max_queue=1
            ) as served:
                release = threading.Event()
                _block_executor(served.app.scheduler, release)
                try:
                    # An idle keep-alive client holding a connection.
                    idle_reader, idle_writer = await asyncio.open_connection(
                        "127.0.0.1", served.port
                    )
                    # A client blocked in `await job.wait()` on a job
                    # whose executor body is stalled.
                    waiter = asyncio.ensure_future(_json_request(
                        served.port, "POST", "/v1/experiments",
                        {"experiment": "table2", "instructions": 20_000,
                         "wait": True},
                    ))
                    for _ in range(500):
                        if served.app.scheduler.inflight_count:
                            break
                        await asyncio.sleep(0.01)
                    assert served.app.scheduler.inflight_count == 1
                    tally = await asyncio.wait_for(
                        _graceful_shutdown(
                            [served.server], served.app, drain_timeout=0.2
                        ),
                        timeout=10.0,
                    )
                    assert tally == {"finished": 0, "cancelled": 1}
                    # The blocked waiter was answered, not cut off.
                    status, record = await asyncio.wait_for(waiter, 10.0)
                    assert status == 200
                    assert record["status"] == "cancelled"
                    # The idle connection got a clean EOF.
                    eof = await asyncio.wait_for(idle_reader.read(), 10.0)
                    assert eof == b""
                    idle_writer.close()
                finally:
                    release.set()

        asyncio.run(body())

    def test_app_shutdown_reports_the_tally(self, tmp_path):
        async def body():
            async with _Server(tmp_path / "results") as served:
                status, _job = await _json_request(
                    served.port, "POST", "/v1/experiments",
                    {"experiment": "table2", "instructions": 20_000,
                     "wait": True},
                )
                assert status == 200
                tally = await served.app.shutdown(timeout=30)
                assert tally == {"finished": 0, "cancelled": 0}
                # Shutdown is idempotent.
                again = await served.app.shutdown(timeout=1)
                assert again == {"finished": 0, "cancelled": 0}

        asyncio.run(body())
