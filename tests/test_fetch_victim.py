"""Unit tests for the victim-cache engine."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.fetch.engine import DemandFetchEngine
from repro.fetch.timing import MemoryTiming
from repro.fetch.victim import VictimCacheEngine
from repro.trace.rle import to_line_runs

GEOMETRY = CacheGeometry(1024, 32, 1)  # 32 sets
TIMING = MemoryTiming(latency=6, bytes_per_cycle=16)


def _runs(addresses):
    return to_line_runs(np.asarray(addresses, dtype=np.uint64), 32)


class TestVictimCacheEngine:
    def test_requires_direct_mapped(self):
        with pytest.raises(ValueError, match="direct-mapped"):
            VictimCacheEngine(CacheGeometry(1024, 32, 2), TIMING)

    def test_conflict_pair_resolved_by_victims(self):
        engine = VictimCacheEngine(GEOMETRY, TIMING, n_victims=2)
        # Lines 0 and 32 conflict (32 sets apart); alternating access
        # after the first two misses should hit the victim buffer.
        addresses = [0, 32 * 32] * 20
        result = engine.run(_runs([a for a in addresses]), warmup_fraction=0.0)
        assert result.misses == 2
        assert engine.victim_hits == 38

    def test_swap_penalty_charged(self):
        engine = VictimCacheEngine(GEOMETRY, TIMING, n_victims=2, swap_penalty=1)
        addresses = [0, 32 * 32] * 3
        result = engine.run(_runs(addresses), warmup_fraction=0.0)
        # 2 full misses (7 cycles) + 4 swaps (1 cycle).
        assert result.stall_cycles == 2 * 7 + 4 * 1

    def test_capacity_limits_help(self):
        # A conflict rotation wider than the victim buffer defeats it.
        engine = VictimCacheEngine(GEOMETRY, TIMING, n_victims=2)
        stride = 32 * 32
        addresses = [0, stride, 2 * stride, 3 * stride] * 10
        result = engine.run(_runs(addresses), warmup_fraction=0.0)
        assert engine.victim_hits == 0
        assert result.misses == 40

    def test_never_worse_than_demand(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses()[:60_000], 32)
        geometry = CacheGeometry(8192, 32, 1)
        demand = DemandFetchEngine(geometry, TIMING).run(runs)
        victim = VictimCacheEngine(geometry, TIMING, n_victims=4).run(runs)
        assert victim.stall_cycles <= demand.stall_cycles
        assert victim.misses <= demand.misses

    def test_validation(self):
        with pytest.raises(ValueError):
            VictimCacheEngine(GEOMETRY, TIMING, n_victims=0)
        with pytest.raises(ValueError):
            VictimCacheEngine(GEOMETRY, TIMING, swap_penalty=-1)
