"""Integration tests for the figure experiments (reduced scale)."""

import pytest

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.common import ExperimentSettings

SETTINGS = ExperimentSettings(n_instructions=150_000, seed=0)


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return figure1.run(SETTINGS, cache_sizes=(8192, 32768, 65536, 262144))

    def test_ibs_needs_8x_the_cache(self, result):
        """The paper's headline: IBS at 64 KB ~= SPEC at 8 KB."""
        equivalent = result.equivalent_ibs_size()
        assert equivalent >= 32 * 1024

    def test_curves_decline(self, result):
        for suite, curve in result.curves.items():
            totals = [curve[s].total for s in sorted(curve)]
            assert totals == sorted(totals, reverse=True), suite

    def test_ibs_above_spec_everywhere(self, result):
        for size in (8192, 32768, 65536):
            assert (
                result.curves["ibs-mach3"][size].total
                > result.curves["spec92"][size].total
            )

    def test_conflict_fraction_positive(self, result):
        ibs_8k = result.curves["ibs-mach3"][8192]
        assert ibs_8k.conflict > 0
        assert ibs_8k.capacity > ibs_8k.conflict  # capacity dominates

    def test_render(self, result):
        assert "Figure 1" in result.render()


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2.run(ExperimentSettings(n_instructions=40_000, seed=0))

    def test_mach_runs_more_components(self, result):
        assert (
            result.active_components["ibs-mach3"]
            > result.active_components["spec92"]
        )
        assert result.active_components["ibs-mach3"] > 2.5

    def test_inventories(self, result):
        assert "Mach 3.0 (microkernel)" in result.inventories
        assert "BSD server" in result.inventories["Mach 3.0 (microkernel)"]
        assert "Figure 2" in result.render()


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3.run(
            SETTINGS,
            l2_sizes=(16 * 1024, 64 * 1024),
            l2_line_sizes=(32, 64, 128),
        )

    def test_l2_improves_economy_baseline(self, result):
        # Paper: "even the smallest L2 cache improves performance over
        # the baseline [economy], provided that the line size is tuned."
        best_small = min(
            value
            for (name, size, _line), value in result.cells.items()
            if name == "economy" and size == 16 * 1024
        )
        assert best_small < figure3.PAPER_BASELINES["economy"]

    def test_bigger_l2_better(self, result):
        for name in ("economy", "high-performance"):
            small = result.cells[(name, 16 * 1024, 64)]
            large = result.cells[(name, 64 * 1024, 64)]
            assert large < small

    def test_best_helper(self, result):
        size, line, value = result.best("economy")
        assert (("economy", size, line) in result.cells)
        assert value == min(
            v for (n, _s, _l), v in result.cells.items() if n == "economy"
        )

    def test_render(self, result):
        assert "Figure 3" in result.render()


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run(SETTINGS)

    def test_associativity_monotone(self, result):
        for name in figure4.CONFIG_NAMES:
            curve = [result.cells[(name, a)] for a in figure4.ASSOCIATIVITIES]
            assert curve == sorted(curve, reverse=True)

    def test_first_doubling_biggest_gain(self, result):
        """Paper: the 1->2 way step gives the single largest reduction."""
        for name in figure4.CONFIG_NAMES:
            first = result.reduction(name, 1, 2)
            second = result.reduction(name, 2, 4)
            third = result.reduction(name, 4, 8)
            assert first > second > third * 0.5

    def test_economy_8way_approaches_hp_direct(self, result):
        """Paper: economy + 8-way L2 ~= high-performance + DM L2."""
        economy_8 = result.cells[("economy", 8)]
        hp_1 = result.cells[("high-performance", 1)]
        assert economy_8 == pytest.approx(hp_1, rel=0.35)

    def test_render(self, result):
        assert "Figure 4" in result.render()


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(
            SETTINGS,
            cache_sizes=(16 * 1024, 64 * 1024),
            associativities=(1, 2),
            n_trials=4,
        )

    def test_ibs_more_variable_than_spec(self, result):
        verilog = result.peak_std("verilog")
        eqntott = result.peak_std("eqntott")
        assert verilog > eqntott

    def test_associativity_damps_variability(self, result):
        for workload in ("verilog", "gs"):
            direct = result.peak_std(workload, ways=1)
            two_way = result.peak_std(workload, ways=2)
            assert two_way <= direct * 1.05

    def test_render(self, result):
        assert "Figure 5" in result.render()


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return figure6.run(
            SETTINGS, bandwidths=(4, 16, 64), line_sizes=(8, 16, 32, 64, 128)
        )

    def test_bandwidth_always_helps(self, result):
        for line in result.line_sizes:
            assert (
                result.cells[(64, line)]
                <= result.cells[(16, line)]
                <= result.cells[(4, line)]
            )

    def test_optimal_line_grows_with_bandwidth(self, result):
        optima = [result.optimal_line_size(bw) for bw in (4, 16, 64)]
        assert optima == sorted(optima)
        assert optima[-1] > optima[0]

    def test_render_marks_optima(self, result):
        assert "*" in result.render()


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run(SETTINGS)

    def test_each_step_improves(self, result):
        for name in figure7.CONFIG_NAMES:
            totals = [result.total(name, step) for step in figure7.STEPS]
            for before, after in zip(totals, totals[1:]):
                assert after <= before * 1.02

    def test_l2_is_biggest_win_for_economy(self, result):
        steps = figure7.STEPS
        totals = [result.total("economy", step) for step in steps]
        drops = [a - b for a, b in zip(totals, totals[1:])]
        assert drops[0] == max(drops)  # the on-chip-L2 step

    def test_stubborn_floor_remains(self, result):
        """The paper's conclusion: ~0.2 CPIinstr remains after all
        optimizations for IBS."""
        final = result.total("high-performance", "pipelining")
        assert 0.08 < final < 0.45

    def test_render(self, result):
        assert "Figure 7" in result.render()
