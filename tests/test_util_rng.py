"""Unit tests for deterministic RNG handling."""

import numpy as np

from repro._util.rng import make_rng, spawn


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert np.array_equal(a.integers(0, 1000, 50), b.integers(0, 1000, 50))

    def test_different_seeds_differ(self):
        a = make_rng(1)
        b = make_rng(2)
        assert not np.array_equal(
            a.integers(0, 10**9, 20), b.integers(0, 10**9, 20)
        )

    def test_none_seed_is_deterministic(self):
        a = make_rng(None)
        b = make_rng(None)
        assert a.integers(0, 10**9) == b.integers(0, 10**9)


class TestSpawn:
    def test_label_separates_streams(self):
        root1 = make_rng(7)
        root2 = make_rng(7)
        child_a = spawn(root1, "a")
        child_b = spawn(root2, "b")
        assert not np.array_equal(
            child_a.integers(0, 10**9, 20), child_b.integers(0, 10**9, 20)
        )

    def test_same_label_same_stream(self):
        child1 = spawn(make_rng(7), "workload")
        child2 = spawn(make_rng(7), "workload")
        assert np.array_equal(
            child1.integers(0, 10**9, 20), child2.integers(0, 10**9, 20)
        )

    def test_child_independent_of_parent_consumption_order(self):
        # Spawning two children with different labels from the same
        # parent state gives streams that don't collide.
        root = make_rng(3)
        a = spawn(root, "a")
        root2 = make_rng(3)
        b = spawn(root2, "a")
        assert np.array_equal(a.integers(0, 100, 10), b.integers(0, 100, 10))
