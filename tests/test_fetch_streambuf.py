"""Unit tests for the pipelined stream-buffer engine."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.fetch.streambuf import StreamBufferEngine
from repro.fetch.timing import MemoryTiming
from repro.trace.rle import to_line_runs

GEOMETRY = CacheGeometry(1024, 16, 1)
TIMING = MemoryTiming(latency=6, bytes_per_cycle=16)


def _runs(addresses, line_size=16):
    return to_line_runs(np.asarray(addresses, dtype=np.uint64), line_size)


class TestStreamBuffer:
    def test_wide_line_miss_costs_fill_penalty(self):
        # 32 B lines over a 16 B/cycle port: a demand miss pays the
        # full two-beat fill, latency + ceil(32/16) - 1 = 7 cycles.
        engine = StreamBufferEngine(
            CacheGeometry(1024, 32, 1), TIMING, n_lines=0
        )
        result = engine.run(_runs([0], line_size=32), warmup_fraction=0.0)
        assert result.stall_cycles == TIMING.latency + 2 - 1

    def test_wide_line_prefetch_pipeline_spacing(self):
        # Same mismatched geometry with prefetching: the buffer's lines
        # arrive one per *two* cycles (one per beat group), so line 1 is
        # ready at cycle (2 beats) + fill 7 = 9.  Consuming the eight
        # 4 B instructions of line 0 takes 8 cycles after the 7-cycle
        # miss, so the hit on line 1 at cycle 15 never stalls.
        engine = StreamBufferEngine(
            CacheGeometry(1024, 32, 1), TIMING, n_lines=2
        )
        addresses = list(range(0, 64, 4))  # lines 0 and 1, 8 refs each
        result = engine.run(_runs(addresses, line_size=32),
                            warmup_fraction=0.0)
        assert result.misses == 1
        assert result.stall_cycles == 7

    def test_wide_line_buffer_hit_waits_for_arrival(self):
        # Jump to the prefetched line immediately: it arrives at cycle
        # 9 but the processor wants it at cycle 8 — a one-cycle stall.
        engine = StreamBufferEngine(
            CacheGeometry(1024, 32, 1), TIMING, n_lines=2
        )
        result = engine.run(_runs([0, 32], line_size=32),
                            warmup_fraction=0.0)
        assert result.misses == 1
        assert result.stall_cycles == 7 + 1

    def test_miss_costs_latency_only(self):
        engine = StreamBufferEngine(GEOMETRY, TIMING, n_lines=0)
        result = engine.run(_runs([0]), warmup_fraction=0.0)
        assert result.stall_cycles == TIMING.latency

    def test_sequential_stream_mostly_absorbed(self):
        engine = StreamBufferEngine(GEOMETRY, TIMING, n_lines=4)
        # Sequential walk within the prefetch depth: after the first
        # miss, prefetched lines arrive 1/cycle while the processor
        # consumes 4 instructions per line.
        addresses = list(range(0, 16 * 5, 4))
        result = engine.run(_runs(addresses), warmup_fraction=0.0)
        # Only the first access misses in both cache and buffer.
        assert result.misses == 1
        # Line i (1-based among prefetches) arrives at 1+i+latency;
        # the processor reaches it at cycle ~6+4i: small or no stalls.
        assert result.stall_cycles < 6 + 4 * 4

    def test_buffered_line_hit_moves_to_cache(self):
        engine = StreamBufferEngine(GEOMETRY, TIMING, n_lines=2)
        engine.run(_runs([0, 16]), warmup_fraction=0.0)
        assert engine.cache.contains_line(1)
        assert 1 not in engine.buffered_lines

    def test_miss_in_both_cancels_inflight_prefetches(self):
        engine = StreamBufferEngine(GEOMETRY, TIMING, n_lines=4)
        # Miss line 0 (prefetch 1-4 issued), then immediately jump far:
        # in-flight prefetches (arrival > now) are cancelled.
        result = engine.run(_runs([0, 1024]), warmup_fraction=0.0)
        assert result.misses == 2
        buffered = engine.buffered_lines
        assert all(line >= 1024 // 16 for line in buffered)

    def test_new_miss_restarts_stream(self):
        # The stream buffer follows one stream: a miss in both cache
        # and buffer restarts prefetching at the new address, and the
        # bounded capacity flushes the previous stream's lines.
        engine = StreamBufferEngine(GEOMETRY, TIMING, n_lines=2)
        runs = _runs([0] * 61 + [4096])
        result = engine.run(runs, warmup_fraction=0.0)
        assert result.misses == 2
        assert set(engine.buffered_lines) == {
            4096 // 16 + 1, 4096 // 16 + 2,
        }

    def test_capacity_bounds_buffer(self):
        engine = StreamBufferEngine(GEOMETRY, TIMING, n_lines=3)
        engine.run(_runs([0]), warmup_fraction=0.0)
        assert len(engine.buffered_lines) <= 3

    def test_deeper_buffer_never_hurts_sequential_code(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses()[:60_000], 16)
        geometry = CacheGeometry(8192, 16, 1)
        results = {
            n: StreamBufferEngine(geometry, TIMING, n_lines=n)
            .run(runs)
            .cpi_instr
            for n in (0, 1, 3, 6)
        }
        assert results[1] < results[0]
        assert results[3] < results[1]
        assert results[6] <= results[3] * 1.02

    def test_refill_on_use_extension_helps_small_buffers(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses()[:60_000], 16)
        geometry = CacheGeometry(8192, 16, 1)
        base = StreamBufferEngine(geometry, TIMING, n_lines=2).run(runs)
        extended = StreamBufferEngine(
            geometry, TIMING, n_lines=2, refill_on_use=True
        ).run(runs)
        assert extended.stall_cycles <= base.stall_cycles

    def test_move_penalty(self):
        no_penalty = StreamBufferEngine(GEOMETRY, TIMING, n_lines=2)
        with_penalty = StreamBufferEngine(
            GEOMETRY, TIMING, n_lines=2, move_penalty=1
        )
        runs = _runs(list(range(0, 16 * 4, 4)))
        a = no_penalty.run(runs, warmup_fraction=0.0).stall_cycles
        b = with_penalty.run(runs, warmup_fraction=0.0).stall_cycles
        assert b >= a

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            StreamBufferEngine(GEOMETRY, TIMING, n_lines=-1)
        with pytest.raises(ValueError):
            StreamBufferEngine(GEOMETRY, TIMING, move_penalty=-1)
