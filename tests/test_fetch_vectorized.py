"""Differential tests: vectorized fetch kernels vs the reference engines.

The contract under test is exact: for every covered (mechanism, timing,
geometry, options) combination, :func:`repro.fetch.run_vectorized` must
return the same ``(instructions, stall_cycles, misses)`` as stepping the
reference engine over the same stream — not approximately, bit for bit.
That is what lets ``engine="auto"`` route the paper sweeps through the
kernels without changing a single rendered digit.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.core.config import MemorySystemConfig
from repro.core.study import ENGINES, evaluate_trace, fetch_result, make_engine
from repro.experiments import figure6, figure7, table6
from repro.experiments.common import (
    ExperimentSettings,
    fetch_point,
    suite_traces,
    sweep_fetch_cpi,
)
from repro.fetch import (
    ECONOMY_MEMORY,
    HIGH_PERF_MEMORY,
    L1_L2_INTERFACE,
    MemoryTiming,
    VECTORIZED_MECHANISMS,
    run_vectorized,
    supports,
    unsupported_reason,
)
from repro.trace.rle import LineRuns, to_line_runs

TIMINGS = (
    ECONOMY_MEMORY,                        # 30 cyc, 4 B/cyc
    HIGH_PERF_MEMORY,                      # 12 cyc, 8 B/cyc
    L1_L2_INTERFACE,                       # 6 cyc, 16 B/cyc
    MemoryTiming(latency=6, bytes_per_cycle=32),
    MemoryTiming(latency=8, bytes_per_cycle=64),
)

GEOMETRIES = (
    CacheGeometry(8192, 32, 1),    # the paper's baseline L1
    CacheGeometry(8192, 32, 2),
    CacheGeometry(16384, 32, 4),
    CacheGeometry(4096, 64, 0),    # fully associative
)

#: Per-mechanism option points exercised by the differential grid.
OPTION_GRID = {
    "demand": ({},),
    "prefetch": ({}, {"n_prefetch": 0}, {"n_prefetch": 3}),
    "tagged": ({},),
    "prefetch+bypass": ({}, {"n_prefetch": 1}, {"n_prefetch": 3}),
    "stream-buffer": (
        {},
        {"n_lines": 2},
        {"n_lines": 0},
        {"n_lines": 4, "refill_on_use": True},
        {"n_lines": 6, "move_penalty": 1},
    ),
    "victim": ({}, {"n_victims": 2}, {"n_victims": 8, "swap_penalty": 0}),
    "markov": (
        {},
        {"table_size": 64},
        {"n_buffers": 2, "hybrid": True},
    ),
}


def reference_result(runs, geometry, timing, mechanism, warmup=0.3, **options):
    config = MemorySystemConfig(name="diff", l1=geometry, memory=timing)
    return make_engine(config, mechanism, **options).run(runs, warmup)


def assert_identical(runs, geometry, timing, mechanism, warmup=0.3, **options):
    try:
        ref = reference_result(
            runs, geometry, timing, mechanism, warmup, **options
        )
    except ValueError as exc:
        # The reference engine rejects the combination outright (e.g. a
        # victim cache behind an associative primary); the kernel must
        # reject it with the same message.
        with pytest.raises(ValueError, match=re.escape(str(exc))):
            run_vectorized(runs, geometry, timing, mechanism, warmup,
                           **options)
        return
    vec = run_vectorized(
        runs, geometry, timing, mechanism, warmup, **options
    )
    assert (vec.instructions, vec.stall_cycles, vec.misses) == (
        ref.instructions,
        ref.stall_cycles,
        ref.misses,
    ), (mechanism, geometry, timing, options)


@pytest.fixture(scope="module")
def runs_by_line_size(small_trace):
    return {
        line_size: small_trace.ifetch_line_runs(line_size)
        for line_size in {g.line_size for g in GEOMETRIES}
    }


class TestDifferentialGrid:
    """Exact equality over the full supported grid, per mechanism."""

    @pytest.mark.parametrize("mechanism", VECTORIZED_MECHANISMS)
    def test_matches_reference(self, mechanism, runs_by_line_size):
        covered = 0
        for geometry in GEOMETRIES:
            runs = runs_by_line_size[geometry.line_size]
            for timing in TIMINGS:
                for options in OPTION_GRID[mechanism]:
                    if not supports(geometry, timing, mechanism, options):
                        continue
                    assert_identical(
                        runs, geometry, timing, mechanism, **options
                    )
                    covered += 1
        assert covered > 0, f"grid never exercised {mechanism}"

    @pytest.mark.parametrize("mechanism", VECTORIZED_MECHANISMS)
    def test_no_warmup(self, mechanism, runs_by_line_size):
        geometry = GEOMETRIES[0]
        runs = runs_by_line_size[geometry.line_size]
        for timing in (ECONOMY_MEMORY, MemoryTiming(6, 32)):
            if not supports(geometry, timing, mechanism):
                continue
            assert_identical(runs, geometry, timing, mechanism, warmup=0.0)


class TestWarmupEdgeCases:
    def empty_runs(self, line_size=32):
        return LineRuns(
            lines=np.array([], dtype=np.uint64),
            counts=np.array([], dtype=np.int64),
            first_offsets=np.array([], dtype=np.int64),
            line_size=line_size,
        )

    @pytest.mark.parametrize("mechanism", VECTORIZED_MECHANISMS)
    def test_empty_window(self, mechanism):
        geometry = CacheGeometry(1024, 32, 1)
        timing = MemoryTiming(latency=6, bytes_per_cycle=32)
        runs = self.empty_runs()
        vec = run_vectorized(runs, geometry, timing, mechanism)
        assert (vec.instructions, vec.stall_cycles, vec.misses) == (0, 0, 0)
        assert_identical(runs, geometry, timing, mechanism)

    @pytest.mark.parametrize("mechanism", VECTORIZED_MECHANISMS)
    def test_miss_on_warmup_boundary(self, mechanism):
        # One cache line: every run misses, including the run exactly at
        # the warmup cut.
        geometry = CacheGeometry(32, 32, 1)
        timing = MemoryTiming(latency=5, bytes_per_cycle=32)
        addresses = np.repeat(
            np.array([0, 32, 0, 32, 0, 32], dtype=np.uint64), 4
        )
        runs = to_line_runs(addresses, 32)
        for warmup in (0.0, 0.25, 0.5, 0.75):
            assert_identical(runs, geometry, timing, mechanism, warmup=warmup)

    def test_single_run_stream(self):
        geometry = CacheGeometry(1024, 32, 1)
        timing = ECONOMY_MEMORY
        runs = to_line_runs(np.full(8, 0x1000, dtype=np.uint64), 32)
        for mechanism in ("demand", "prefetch", "tagged"):
            assert_identical(runs, geometry, timing, mechanism)


class TestSupports:
    GEOMETRY = CacheGeometry(8192, 32, 1)

    def test_whole_grid_covered(self):
        """Every (mechanism, geometry, timing) of the paper grids."""
        for mechanism in VECTORIZED_MECHANISMS:
            for geometry in GEOMETRIES:
                for timing in TIMINGS:
                    assert supports(geometry, timing, mechanism), (
                        mechanism, geometry, timing,
                    )

    def test_formerly_uncovered_corners_now_supported(self):
        # Each of these used to route to the reference engines.
        assert supports(self.GEOMETRY, ECONOMY_MEMORY, "victim")
        assert supports(self.GEOMETRY, ECONOMY_MEMORY, "markov")
        # Associative prefetch+bypass.
        assert supports(
            CacheGeometry(8192, 32, 2), ECONOMY_MEMORY, "prefetch+bypass"
        )
        # Wrap-around burst: two sets, burst of three lines.
        tiny = CacheGeometry(64, 32, 1)
        assert supports(tiny, ECONOMY_MEMORY, "prefetch+bypass",
                        {"n_prefetch": 2})
        # Stream buffer over a narrower (and a wider) transfer width.
        assert supports(self.GEOMETRY, L1_L2_INTERFACE, "stream-buffer")
        assert supports(self.GEOMETRY, MemoryTiming(8, 64), "stream-buffer")

    def test_unknown_mechanism_refused_with_reason(self):
        assert not supports(self.GEOMETRY, ECONOMY_MEMORY, "no-such-thing")
        reason = unsupported_reason(
            self.GEOMETRY, ECONOMY_MEMORY, "no-such-thing"
        )
        assert "no-such-thing" in reason
        assert "no vectorized kernel" in reason

    def test_unknown_option_defers_to_reference(self):
        assert not supports(
            self.GEOMETRY, ECONOMY_MEMORY, "demand", {"n_prefetch": 1}
        )
        reason = unsupported_reason(
            self.GEOMETRY, ECONOMY_MEMORY, "demand", {"n_prefetch": 1}
        )
        assert "'n_prefetch'" in reason
        assert "'demand'" in reason

    def test_line_size_mismatch_raises(self, runs_by_line_size):
        runs = runs_by_line_size[32]
        with pytest.raises(ValueError, match="32 B lines"):
            run_vectorized(runs, CacheGeometry(4096, 64, 1), ECONOMY_MEMORY)

    def test_unsupported_raise_names_the_combination(self, runs_by_line_size):
        """The forced-engine error identifies mechanism, option, geometry."""
        runs = runs_by_line_size[32]
        with pytest.raises(ValueError) as excinfo:
            run_vectorized(
                runs, self.GEOMETRY, ECONOMY_MEMORY, "demand", n_prefetch=1
            )
        message = str(excinfo.value)
        assert "'demand'" in message
        assert "n_prefetch" in message
        assert self.GEOMETRY.describe() in message
        assert "engine='reference'" in message
        with pytest.raises(ValueError, match="no vectorized kernel"):
            run_vectorized(
                runs, self.GEOMETRY, ECONOMY_MEMORY, "no-such-thing"
            )


class TestEngineKnob:
    """fetch_result's engine dispatch: auto falls back, vectorized raises."""

    CONFIG = MemorySystemConfig(
        name="knob", l1=CacheGeometry(8192, 32, 1), memory=ECONOMY_MEMORY
    )

    def test_engines_tuple(self):
        assert ENGINES == ("auto", "reference", "vectorized")

    def test_unknown_engine_rejected(self, runs_by_line_size):
        with pytest.raises(ValueError, match="unknown engine"):
            fetch_result(runs_by_line_size[32], self.CONFIG, engine="numba")

    def test_explicit_engines_agree(self, runs_by_line_size):
        runs = runs_by_line_size[32]
        for mechanism in VECTORIZED_MECHANISMS:
            results = [
                fetch_result(runs, self.CONFIG, mechanism, engine=engine)
                for engine in ENGINES
            ]
            assert results[0] == results[1] == results[2], mechanism

    def test_vectorized_runs_formerly_reference_only(self, runs_by_line_size):
        """victim / associative bypass now run under engine="vectorized"."""
        runs = runs_by_line_size[32]
        forced = fetch_result(runs, self.CONFIG, "victim", engine="vectorized")
        assert forced == fetch_result(
            runs, self.CONFIG, "victim", engine="reference"
        )
        assoc = MemorySystemConfig(
            name="assoc", l1=CacheGeometry(8192, 32, 2), memory=ECONOMY_MEMORY
        )
        forced = fetch_result(
            runs, assoc, "prefetch+bypass", engine="vectorized", n_prefetch=2
        )
        assert forced == fetch_result(
            runs, assoc, "prefetch+bypass", engine="reference", n_prefetch=2
        )

    def test_vectorized_raises_on_unknown_options(self, runs_by_line_size):
        runs = runs_by_line_size[32]
        with pytest.raises(ValueError, match="'demand'"):
            fetch_result(
                runs, self.CONFIG, "demand", engine="vectorized", n_prefetch=1
            )

    def test_evaluate_trace_engines_agree(self, small_trace):
        for engine in ("reference", "vectorized"):
            result = evaluate_trace(
                small_trace, self.CONFIG, "prefetch", engine=engine,
                n_prefetch=2,
            )
            assert result.cpi_l1 == pytest.approx(
                evaluate_trace(
                    small_trace, self.CONFIG, "prefetch", n_prefetch=2
                ).cpi_l1,
                abs=0,
            )


class TestSweepPlanner:
    SETTINGS = ExperimentSettings(n_instructions=30_000, seed=3)

    def test_matches_per_point_evaluate(self):
        config = MemorySystemConfig(
            name="planner", l1=CacheGeometry(8192, 32, 1),
            memory=L1_L2_INTERFACE,
        )
        points = [
            fetch_point(("demand",), config, "demand"),
            fetch_point(("prefetch", 2), config, "prefetch", n_prefetch=2),
        ]
        swept = sweep_fetch_cpi("ibs-mach3", points, self.SETTINGS)
        assert set(swept) == {("demand",), ("prefetch", 2)}
        # Bit-identical to evaluating each point one trace at a time.
        expected = np.mean([
            evaluate_trace(trace, config, "demand",
                           engine=self.SETTINGS.engine).cpi_l1
            for trace in suite_traces("ibs-mach3", self.SETTINGS)
        ])
        assert swept[("demand",)][0] == float(expected)

    def test_duplicate_keys_rejected(self):
        config = MemorySystemConfig(
            name="dup", l1=CacheGeometry(8192, 32, 1), memory=L1_L2_INTERFACE
        )
        points = [
            fetch_point(("x",), config, "demand"),
            fetch_point(("x",), config, "prefetch", n_prefetch=1),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            sweep_fetch_cpi("ibs-mach3", points, self.SETTINGS)

    def test_settings_engine_validated(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ExperimentSettings(n_instructions=1000, seed=0, engine="numba")

    def test_scaled_preserves_engine(self):
        settings = ExperimentSettings(
            n_instructions=1000, seed=0, engine="reference"
        )
        assert settings.scaled(0.5).engine == "reference"


class TestRendersBitIdentical:
    """The acceptance criterion: figure/table output is byte-identical
    whichever engine produced it."""

    def _settings(self, engine):
        return ExperimentSettings(n_instructions=30_000, seed=0, engine=engine)

    def test_figure6(self):
        renders = {
            engine: figure6.run(
                self._settings(engine),
                bandwidths=(4, 16),
                line_sizes=(16, 32),
            ).render()
            for engine in ("reference", "vectorized")
        }
        assert renders["reference"] == renders["vectorized"]

    def test_table6(self):
        renders = {
            engine: table6.run(self._settings(engine)).render()
            for engine in ("reference", "vectorized")
        }
        assert renders["reference"] == renders["vectorized"]

    def test_figure7(self):
        # Exercises demand, prefetch, bypass and stream-buffer kernels
        # in one ladder (plus the engine-independent L2 leg).
        renders = {
            engine: figure7.run(self._settings(engine)).render()
            for engine in ("reference", "auto")
        }
        assert renders["reference"] == renders["auto"]
