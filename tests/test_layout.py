"""Unit tests for profiling and procedure placement."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.core.metrics import measure_mpi
from repro.layout.placement import place_by_heat, relocate_addresses
from repro.layout.profile import profile_trace
from repro.trace.record import Component
from repro.trace.rle import to_line_runs
from repro.workloads.generator import TraceSynthesizer
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def synth_and_trace():
    synthesizer = TraceSynthesizer(get_workload("groff", "mach3"), seed=3)
    trace = synthesizer.synthesize(100_000)
    return synthesizer, trace


class TestProfile:
    def test_attribution_covers_component_fetches(self, synth_and_trace):
        synthesizer, trace = synth_and_trace
        images = synthesizer.code_images()
        total_attributed = 0
        for image in images.values():
            profile = profile_trace(trace, image)
            total_attributed += profile.total
        assert total_attributed == trace.instruction_count

    def test_unattributed_are_other_components(self, synth_and_trace):
        synthesizer, trace = synth_and_trace
        user_image = synthesizer.code_images()[Component.USER]
        profile = profile_trace(trace, user_image)
        user_fetches = int(
            (
                (trace.kinds == 0)
                & (trace.components == int(Component.USER))
            ).sum()
        )
        assert profile.total == user_fetches
        assert profile.unattributed == trace.instruction_count - user_fetches

    def test_hottest_sorted(self, synth_and_trace):
        synthesizer, trace = synth_and_trace
        profile = profile_trace(
            trace, synthesizer.code_images()[Component.USER]
        )
        hottest = profile.hottest(5)
        counts = [count for _i, count in hottest]
        assert counts == sorted(counts, reverse=True)

    def test_coverage_monotone(self, synth_and_trace):
        synthesizer, trace = synth_and_trace
        profile = profile_trace(
            trace, synthesizer.code_images()[Component.USER]
        )
        assert profile.coverage(0.5) <= profile.coverage(0.9)
        assert profile.coverage(0.9) <= len(profile.counts)


class TestPlacement:
    def test_plan_is_permutation(self, synth_and_trace):
        synthesizer, trace = synth_and_trace
        image = synthesizer.code_images()[Component.USER]
        plan = place_by_heat(profile_trace(trace, image))
        # New extents must not overlap and must cover the same bytes.
        order = sorted(
            range(len(image.procedures)), key=lambda i: plan.new_bases[i]
        )
        cursor = None
        for index in order:
            base = int(plan.new_bases[index])
            if cursor is not None:
                assert base >= cursor
            cursor = base + image.procedures[index].size_bytes

    def test_hottest_placed_first(self, synth_and_trace):
        synthesizer, trace = synth_and_trace
        image = synthesizer.code_images()[Component.USER]
        profile = profile_trace(trace, image)
        plan = place_by_heat(profile)
        hottest = profile.hottest(1)[0][0]
        assert plan.new_bases[hottest] == min(
            p.base for p in image.procedures
        )

    def test_relocation_preserves_within_procedure_offsets(
        self, synth_and_trace
    ):
        synthesizer, trace = synth_and_trace
        image = synthesizer.code_images()[Component.USER]
        plan = place_by_heat(profile_trace(trace, image))
        proc = image.procedures[0]
        original = np.array(
            [proc.base, proc.base + 4, proc.base + 8], dtype=np.uint64
        )
        moved = relocate_addresses(original, plan)
        assert moved[1] - moved[0] == 4
        assert moved[2] - moved[0] == 8
        assert moved[0] == plan.new_bases[0]

    def test_other_components_untouched(self, synth_and_trace):
        synthesizer, trace = synth_and_trace
        user_image = synthesizer.code_images()[Component.USER]
        plan = place_by_heat(profile_trace(trace, user_image))
        kernel_address = np.array([0x8000_0000], dtype=np.uint64)
        assert relocate_addresses(kernel_address, plan)[0] == 0x8000_0000

    def test_relocation_preserves_fetch_count(self, synth_and_trace):
        synthesizer, trace = synth_and_trace
        image = synthesizer.code_images()[Component.USER]
        plan = place_by_heat(profile_trace(trace, image))
        addresses = trace.ifetch_addresses()
        relocated = relocate_addresses(addresses, plan)
        assert len(relocated) == len(addresses)

    def test_placement_does_not_hurt_on_average(self, synth_and_trace):
        """Heat packing targets conflicts; over the IBS models it should
        be at worst neutral at the reference cache."""
        synthesizer, trace = synth_and_trace
        addresses = trace.ifetch_addresses()
        relocated = addresses
        for image in synthesizer.code_images().values():
            profile = profile_trace(trace, image)
            if profile.total:
                relocated = relocate_addresses(
                    relocated, place_by_heat(profile)
                )
        geometry = CacheGeometry(8192, 32, 1)
        before = measure_mpi(to_line_runs(addresses, 32), geometry).mpi
        after = measure_mpi(to_line_runs(relocated, 32), geometry).mpi
        assert after <= before * 1.05
