"""Unit tests for the branch-target buffer."""

import numpy as np
import pytest

from repro.fetch.branch import BranchResult, BranchTargetBuffer


def _addresses(pcs):
    return np.asarray(pcs, dtype=np.uint64)


class TestBranchTargetBuffer:
    def test_sequential_stream_never_mispredicts(self):
        btb = BranchTargetBuffer(64)
        result = btb.simulate(_addresses(range(0, 400, 4)))
        assert result.taken == 0
        assert result.mispredictions == 0

    def test_first_taken_mispredicts_then_learns(self):
        # A loop: 0,4,8 -> back to 0, repeatedly.  The back-edge at 8
        # mispredicts once, then predicts correctly.
        pcs = [0, 4, 8] * 20
        result = BranchTargetBuffer(64).simulate(_addresses(pcs))
        assert result.taken == 19
        assert result.mispredictions == 1

    def test_biased_branch_tolerated_by_hysteresis(self):
        # Taken 3x, fall through once, taken 3x...: the 2-bit counter
        # absorbs the single contrary outcome without forgetting.
        pcs = []
        for _ in range(10):
            pcs += [0, 4, 8, 0, 4, 8, 0, 4, 8, 0, 4, 8, 12, 16]
            # after the fall-through at 8 (to 12), jump back via 16->0
            # pattern is implied by the next group starting at 0
        result = BranchTargetBuffer(64).simulate(_addresses(pcs))
        # Far fewer mispredictions than taken transfers.
        assert result.mispredictions < result.taken / 2

    def test_target_change_mispredicts_once(self):
        # Indirect branch: same pc, alternating far targets.
        pcs = [0, 100, 0, 200, 0, 100, 0, 200] * 5
        result = BranchTargetBuffer(64).simulate(_addresses(pcs))
        # Every taken transfer from 0 has a different target than last
        # time -> all mispredict; transfers back to 0 also jump.
        assert result.mispredictions >= result.taken // 2

    def test_capacity_bounded(self):
        btb = BranchTargetBuffer(4)
        # 8 distinct loops round-robin exceed 4 entries.
        pcs = []
        for loop in range(8):
            base = loop * 1000
            pcs += [base, base + 4, base]
        btb.simulate(_addresses(pcs * 3))
        assert btb.occupancy <= 4

    def test_bigger_btb_helps_loop_working_set(self):
        # Many loops revisited in round-robin: a BTB holding them all
        # predicts their back-edges; a tiny one forgets each time.
        pcs = []
        for _ in range(10):
            for loop in range(32):
                base = loop * 1000
                pcs += [base, base + 4, base, base + 4, base + 8]
        small = BranchTargetBuffer(4).simulate(_addresses(pcs))
        large = BranchTargetBuffer(256).simulate(_addresses(pcs))
        assert large.mispredictions < small.mispredictions

    def test_skip_excludes_warmup(self):
        pcs = [0, 4, 8] * 10
        full = BranchTargetBuffer(64).simulate(_addresses(pcs), skip=0)
        warm = BranchTargetBuffer(64).simulate(_addresses(pcs), skip=10)
        assert warm.transitions == full.transitions - 10
        assert warm.mispredictions <= full.mispredictions

    def test_result_properties(self):
        result = BranchResult(transitions=100, taken=20, mispredictions=5)
        assert result.taken_rate == pytest.approx(0.2)
        assert result.misprediction_rate == pytest.approx(0.05)
        assert result.cpi_contribution(3.0) == pytest.approx(0.15)

    def test_degenerate(self):
        assert BranchTargetBuffer(8).simulate(_addresses([0])).transitions == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(0)

    def test_ibs_mispredicts_more_than_spec(self, medium_trace, spec_trace):
        ibs = BranchTargetBuffer(512).simulate(
            medium_trace.ifetch_addresses()[:80_000]
        )
        spec = BranchTargetBuffer(512).simulate(
            spec_trace.ifetch_addresses()
        )
        assert ibs.misprediction_rate > spec.misprediction_rate
