"""Unit tests for the sequential set-associative cache."""

import pytest

from repro.caches.base import CacheGeometry, ReplacementPolicy
from repro.caches.setassoc import SetAssociativeCache


def _cache(size=1024, line=32, ways=1, policy=ReplacementPolicy.LRU, seed=0):
    return SetAssociativeCache(CacheGeometry(size, line, ways), policy, seed)


class TestBasicBehaviour:
    def test_first_access_misses_second_hits(self):
        cache = _cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_line_different_offsets_hit(self):
        cache = _cache(line=32)
        cache.access(0x100)
        assert cache.access(0x11C) is True  # same 32-byte line

    def test_direct_mapped_conflict(self):
        cache = _cache(size=1024, line=32, ways=1)  # 32 sets
        cache.access(0)
        cache.access(1024)  # same set, different tag: evicts
        assert cache.access(0) is False

    def test_two_way_avoids_that_conflict(self):
        cache = _cache(size=1024, line=32, ways=2)
        cache.access(0)
        cache.access(1024)
        assert cache.access(0) is True

    def test_lru_within_set(self):
        cache = _cache(size=1024, line=32, ways=2)  # 16 sets
        set_stride = 16 * 32  # same set every stride
        cache.access(0)
        cache.access(set_stride)
        cache.access(0)  # refresh
        cache.access(2 * set_stride)  # evicts set_stride, not 0
        assert cache.access(0) is True
        assert cache.access(set_stride) is False

    def test_stats(self):
        cache = _cache()
        cache.access(0)
        cache.access(0)
        cache.access(2048)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2


class TestFifo:
    def test_fifo_hit_does_not_refresh(self):
        cache = _cache(size=1024, line=32, ways=2, policy=ReplacementPolicy.FIFO)
        stride = 16 * 32
        cache.access(0)
        cache.access(stride)
        cache.access(0)  # FIFO: does not refresh 0
        cache.access(2 * stride)  # evicts 0 (oldest by insertion)
        assert not cache.contains(0)
        assert cache.contains(stride)


class TestRandom:
    def test_random_is_deterministic_by_seed(self):
        def misses(seed):
            cache = _cache(
                size=256, line=32, ways=4, policy=ReplacementPolicy.RANDOM,
                seed=seed,
            )
            return [cache.access(a * 32) for a in range(50)]

        assert misses(1) == misses(1)

    def test_random_capacity_respected(self):
        cache = _cache(size=256, line=32, ways=8,
                       policy=ReplacementPolicy.RANDOM, seed=3)
        for a in range(0, 20):
            cache.access(a * 32)
        assert len(cache.resident_lines()) <= 8


class TestSideChannels:
    def test_contains_has_no_side_effect(self):
        cache = _cache()
        assert cache.contains(0x100) is False
        assert cache.stats.accesses == 0
        cache.access(0x100)
        assert cache.contains(0x100) is True

    def test_install_line(self):
        cache = _cache()
        cache.install_line(5)
        assert cache.contains_line(5)
        assert cache.stats.accesses == 0

    def test_install_line_reports_victim(self):
        cache = _cache(size=1024, line=32, ways=1)
        cache.install_line(0)
        victim = cache.install_line(32)  # 32 sets: line 32 maps to set 0
        assert victim == 0

    def test_install_existing_line_no_victim(self):
        cache = _cache()
        cache.install_line(7)
        assert cache.install_line(7) is None

    def test_invalidate_all(self):
        cache = _cache()
        cache.access(0x100)
        cache.invalidate_all()
        assert cache.contains(0x100) is False
        assert cache.stats.accesses == 1  # stats preserved

    def test_resident_lines(self):
        cache = _cache(size=1024, line=32, ways=2)
        cache.access(0)
        cache.access(4096)
        resident = set(cache.resident_lines())
        assert resident == {0, 4096 // 32}
