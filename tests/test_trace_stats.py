"""Unit tests for trace statistics."""

import numpy as np
import pytest

from repro.trace.record import Component, RefKind
from repro.trace.stats import (
    component_mix,
    compute_stats,
    sequential_run_lengths,
    working_set_curve,
)
from repro.trace.trace import Trace


def _ifetch_trace(addresses, components=None):
    n = len(addresses)
    components = components or [Component.USER] * n
    return Trace(
        np.asarray(addresses, dtype=np.uint64),
        np.full(n, RefKind.IFETCH, dtype=np.uint8),
        np.asarray(components, dtype=np.uint8),
    )


class TestComputeStats:
    def test_counts(self, handmade_trace):
        stats = compute_stats(handmade_trace)
        assert stats.references == 6
        assert stats.instructions == 4
        assert stats.loads == 1
        assert stats.stores == 1

    def test_footprints(self, handmade_trace):
        stats = compute_stats(handmade_trace)
        # 4 distinct instruction words
        assert stats.ifetch_footprint_bytes == 16
        # load and store hit the same word
        assert stats.data_footprint_bytes == 4

    def test_describe_renders(self, handmade_trace):
        text = compute_stats(handmade_trace).describe()
        assert "instructions" in text
        assert "component mix" in text

    def test_mean_sequential_run(self):
        # 0,4,8 sequential | 100 | 104: two breaks -> runs 3 and 2.
        trace = _ifetch_trace([0, 4, 8, 100, 104])
        stats = compute_stats(trace)
        assert stats.mean_sequential_run == pytest.approx(5 / 2)

    def test_synthesized_trace_is_plausible(self, medium_trace):
        stats = compute_stats(medium_trace)
        assert stats.instructions == 150_000
        assert 2 < stats.mean_sequential_run < 50
        assert stats.ifetch_footprint_bytes > 50 * 1024


class TestComponentMix:
    def test_fractions_sum_to_one(self, medium_trace):
        mix = component_mix(medium_trace)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_values(self, handmade_trace):
        mix = component_mix(handmade_trace)
        assert mix[Component.USER] == pytest.approx(0.75)
        assert mix[Component.KERNEL] == pytest.approx(0.25)

    def test_empty(self):
        assert component_mix(Trace.empty()) == {}


class TestSequentialRunLengths:
    def test_runs(self):
        trace = _ifetch_trace([0, 4, 8, 100, 104, 0])
        assert list(sequential_run_lengths(trace)) == [3, 2, 1]

    def test_empty(self):
        assert len(sequential_run_lengths(Trace.empty())) == 0


class TestWorkingSetCurve:
    def test_window_counts(self):
        # window of 4 fetches: first window touches 1 line, second 4.
        addresses = [0, 4, 8, 12, 0, 64, 128, 256]
        trace = _ifetch_trace(addresses)
        curve = working_set_curve(trace, line_size=32, window=4)
        assert list(curve) == [1, 4]

    def test_bloat_shows_in_working_set(self, medium_trace, spec_trace):
        ibs = working_set_curve(medium_trace, 32, 10_000).mean()
        spec = working_set_curve(spec_trace, 32, 10_000).mean()
        assert ibs > spec  # IBS touches more lines per window
