"""Unit and cross-validation tests for the vectorized miss counters.

The key property: for any stream, the vectorized counters agree
reference-for-reference with the sequential object simulator.
"""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.caches.setassoc import SetAssociativeCache
from repro.caches.vectorized import (
    compulsory_mask,
    count_misses,
    lru_stack_distances,
    miss_mask_direct_mapped,
    miss_mask_fully_associative,
    miss_mask_set_associative,
    rescale_lines,
)


def _random_lines(n=3000, span=400, seed=0):
    return np.random.default_rng(seed).integers(0, span, n).astype(np.uint64)


def _sequential_mask(lines, n_sets, ways):
    cache = SetAssociativeCache(CacheGeometry(n_sets * ways * 32, 32, ways))
    return np.array([not cache.access_line(int(l)) for l in lines])


class TestDirectMapped:
    def test_matches_sequential(self):
        lines = _random_lines()
        vec = miss_mask_direct_mapped(lines, 128)
        seq = _sequential_mask(lines, 128, 1)
        assert np.array_equal(vec, seq)

    def test_all_first_touches_miss(self):
        lines = np.arange(100, dtype=np.uint64)
        assert miss_mask_direct_mapped(lines, 256).all()

    def test_repeat_hits(self):
        lines = np.array([5, 5, 5], dtype=np.uint64)
        assert list(miss_mask_direct_mapped(lines, 16)) == [True, False, False]

    def test_conflict_alternation_always_misses(self):
        lines = np.array([0, 16, 0, 16, 0], dtype=np.uint64)
        assert miss_mask_direct_mapped(lines, 16).all()

    def test_empty(self):
        assert len(miss_mask_direct_mapped(np.zeros(0, np.uint64), 16)) == 0

    def test_rejects_non_power_sets(self):
        with pytest.raises(ValueError):
            miss_mask_direct_mapped(np.array([0], np.uint64), 100)


class TestSetAssociative:
    @pytest.mark.parametrize("ways", [2, 4, 8])
    def test_matches_sequential(self, ways):
        lines = _random_lines(seed=ways)
        vec = miss_mask_set_associative(lines, 64, ways)
        seq = _sequential_mask(lines, 64, ways)
        assert np.array_equal(vec, seq)

    def test_ways_one_delegates_to_direct_mapped(self):
        lines = _random_lines(seed=11)
        assert np.array_equal(
            miss_mask_set_associative(lines, 128, 1),
            miss_mask_direct_mapped(lines, 128),
        )

    def test_higher_associativity_never_more_misses_same_size(self):
        lines = _random_lines(seed=2)
        total_lines = 256
        m1 = miss_mask_set_associative(lines, total_lines, 1).sum()
        m2 = miss_mask_set_associative(lines, total_lines // 2, 2).sum()
        m8 = miss_mask_set_associative(lines, total_lines // 8, 8).sum()
        # Not strictly monotone in theory, but overwhelmingly so for
        # random streams; allow a tiny margin.
        assert m2 <= m1 * 1.02
        assert m8 <= m2 * 1.02


class TestFullyAssociative:
    def test_matches_sequential_fa(self):
        lines = _random_lines(n=1500, span=120, seed=3)
        vec = miss_mask_fully_associative(lines, 64)
        cache = SetAssociativeCache(CacheGeometry(64 * 32, 32, 0))
        seq = np.array([not cache.access_line(int(l)) for l in lines])
        assert np.array_equal(vec, seq)

    def test_capacity_one(self):
        lines = np.array([1, 1, 2, 1], dtype=np.uint64)
        assert list(miss_mask_fully_associative(lines, 1)) == [
            True, False, True, True,
        ]


class TestStackDistances:
    def test_known_sequence(self):
        lines = np.array([1, 2, 3, 1, 2, 2, 3], dtype=np.uint64)
        distances = lru_stack_distances(lines)
        assert list(distances) == [-1, -1, -1, 2, 2, 0, 2]

    def test_first_touches_are_negative(self):
        lines = np.array([10, 20, 30], dtype=np.uint64)
        assert (lru_stack_distances(lines) == -1).all()

    def test_immediate_repeat_distance_zero(self):
        lines = np.array([5, 5], dtype=np.uint64)
        assert lru_stack_distances(lines)[1] == 0

    def test_distances_bounded_by_distinct_count(self):
        lines = _random_lines(n=2000, span=50, seed=6)
        distances = lru_stack_distances(lines)
        assert distances.max() < 50

    def test_miss_mask_consistency_across_capacities(self):
        # The FA miss masks derived from one distance array must be
        # monotone: larger capacity -> subset of misses.
        lines = _random_lines(n=1000, span=80, seed=8)
        small = miss_mask_fully_associative(lines, 16)
        large = miss_mask_fully_associative(lines, 64)
        assert not (large & ~small).any()


class TestCompulsory:
    def test_each_line_once(self):
        lines = np.array([3, 4, 3, 5, 4], dtype=np.uint64)
        mask = compulsory_mask(lines)
        assert list(mask) == [True, True, False, True, False]
        assert mask.sum() == 3

    def test_empty(self):
        assert compulsory_mask(np.zeros(0, np.uint64)).sum() == 0


class TestCountMisses:
    def test_consistent_with_mask(self):
        lines = _random_lines(seed=4)
        expected = miss_mask_set_associative(lines, 64, 2).sum()
        assert count_misses(lines, 64 * 2 * 32, 32, 2) == expected

    def test_fully_associative_selector(self):
        lines = _random_lines(n=500, span=100, seed=5)
        expected = miss_mask_fully_associative(lines, 32).sum()
        assert count_misses(lines, 32 * 32, 32, 0) == expected

    def test_rejects_overassociative(self):
        with pytest.raises(ValueError):
            count_misses(np.array([0], np.uint64), 64, 32, 4)


class TestRescaleLines:
    def test_coarsen(self):
        lines = np.array([0, 1, 2, 3], dtype=np.uint64)
        assert list(rescale_lines(lines, 16, 64)) == [0, 0, 0, 0]
        assert list(rescale_lines(lines, 16, 32)) == [0, 0, 1, 1]

    def test_same_size_identity(self):
        lines = np.array([7, 9], dtype=np.uint64)
        assert list(rescale_lines(lines, 32, 32)) == [7, 9]

    def test_refine_rejected(self):
        with pytest.raises(ValueError):
            rescale_lines(np.array([0], np.uint64), 64, 32)


class TestLineOrderCache:
    """Memoized argsorts shared across a sweep's repeated calls."""

    def test_same_array_same_cache(self):
        from repro.caches.vectorized import clear_order_caches, line_order_cache

        clear_order_caches()
        lines = _random_lines()
        assert line_order_cache(lines) is line_order_cache(lines)

    def test_order_memoized_per_n_sets(self):
        from repro.caches.vectorized import clear_order_caches, line_order_cache

        clear_order_caches()
        cache = line_order_cache(_random_lines())
        first = cache.order(64)
        assert cache.order(64) is first
        assert cache.order(128) is not first

    def test_order_is_correct(self):
        from repro.caches.vectorized import clear_order_caches, line_order_cache

        clear_order_caches()
        lines = _random_lines()
        order = line_order_cache(lines).order(128)
        sets = lines & np.uint64(127)
        assert np.array_equal(order, np.argsort(sets, kind="stable"))

    def test_explicit_order_matches_cached(self):
        from repro.caches.vectorized import clear_order_caches, line_order_cache

        clear_order_caches()
        lines = _random_lines()
        sets = lines & np.uint64(127)
        explicit = np.argsort(sets, kind="stable")
        with_explicit = miss_mask_direct_mapped(lines, 128, order=explicit)
        with_cache = miss_mask_direct_mapped(lines, 128)
        assert np.array_equal(with_explicit, with_cache)

    def test_compulsory_memoized_and_correct(self):
        from repro.caches.vectorized import clear_order_caches, line_order_cache

        clear_order_caches()
        lines = np.array([3, 1, 3, 2, 1, 4], dtype=np.uint64)
        cache = line_order_cache(lines)
        mask = cache.compulsory()
        assert list(mask) == [True, True, False, True, False, True]
        assert cache.compulsory() is mask
        assert np.array_equal(compulsory_mask(lines), mask)

    def test_results_are_read_only(self):
        from repro.caches.vectorized import clear_order_caches, line_order_cache

        clear_order_caches()
        cache = line_order_cache(_random_lines())
        with pytest.raises(ValueError):
            cache.order(64)[0] = 0
        with pytest.raises(ValueError):
            cache.compulsory()[0] = False

    def test_registry_bounded(self):
        from repro.caches.vectorized import (
            _ORDER_CACHE_CAPACITY,
            _order_caches,
            clear_order_caches,
            line_order_cache,
        )

        clear_order_caches()
        arrays = [
            _random_lines(seed=i) for i in range(_ORDER_CACHE_CAPACITY + 4)
        ]
        for lines in arrays:
            line_order_cache(lines)
        assert len(_order_caches) == _ORDER_CACHE_CAPACITY

    def test_repeated_sweep_reuses_order(self):
        from repro.caches.vectorized import clear_order_caches

        clear_order_caches()
        lines = _random_lines()
        first = miss_mask_direct_mapped(lines, 64)
        second = miss_mask_direct_mapped(lines, 64)
        assert np.array_equal(first, second)
        seq = _sequential_mask(lines, 64, 1)
        assert np.array_equal(first, seq)


class TestMultiGeometryMasks:
    """miss_masks(): many geometries priced from shared stack distances."""

    def shapes(self):
        # Direct-mapped, set-associative (several ways per set count),
        # and fully-associative shapes, deliberately mixed.
        return [(64, 1), (64, 2), (64, 4), (32, 1), (16, 8), (256, 0)]

    def test_matches_single_shape_masks(self):
        from repro.caches.vectorized import clear_order_caches, line_order_cache

        clear_order_caches()
        lines = _random_lines()
        masks = line_order_cache(lines).miss_masks(self.shapes())
        assert set(masks) == set(self.shapes())
        for shape, mask in masks.items():
            n_sets, ways = shape
            expected = (
                miss_mask_fully_associative(lines, n_sets)
                if ways == 0
                else miss_mask_set_associative(lines, n_sets, ways)
            )
            assert np.array_equal(mask, expected), shape

    def test_masks_land_in_the_memo(self):
        from repro.caches.vectorized import clear_order_caches, line_order_cache

        clear_order_caches()
        lines = _random_lines(seed=3)
        cache = line_order_cache(lines)
        batched = cache.miss_masks(self.shapes())
        for shape, mask in batched.items():
            assert cache.miss_mask(*shape) is mask

    def test_empty_stream(self):
        from repro.caches.vectorized import clear_order_caches, line_order_cache

        clear_order_caches()
        lines = np.array([], dtype=np.uint64)
        masks = line_order_cache(lines).miss_masks([(8, 1), (4, 2)])
        assert all(mask.shape == (0,) for mask in masks.values())

    def test_eviction_counter_exposed(self):
        from repro.caches.vectorized import (
            _ORDER_CACHE_CAPACITY,
            clear_order_caches,
            line_order_cache,
            order_cache_stats,
        )

        clear_order_caches()
        assert order_cache_stats()["evictions"] == 0
        for i in range(_ORDER_CACHE_CAPACITY + 3):
            line_order_cache(_random_lines(n=64, seed=100 + i))
        stats = order_cache_stats()
        assert stats["evictions"] >= 3
        assert set(stats) == {
            "entries", "bytes", "evictions", "max_entries", "max_bytes",
        }
        clear_order_caches()
        assert order_cache_stats()["evictions"] == 0
