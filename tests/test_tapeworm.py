"""Unit tests for trap-driven (Tapeworm) simulation."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.tapeworm.trapdriven import TapewormSimulator, translate_lines
from repro.trace.rle import to_line_runs
from repro.vm.pagemap import IdentityPageMapper, RandomPageMapper


class TestTranslateLines:
    def test_identity(self):
        mapper = IdentityPageMapper()
        lines = np.array([0, 1, 200, 4096], dtype=np.uint64)
        assert np.array_equal(translate_lines(lines, 32, mapper), lines)

    def test_within_page_offsets_preserved(self):
        mapper = RandomPageMapper(seed=2)
        lines_per_page = 4096 // 32
        lines = np.array([5, 5 + lines_per_page], dtype=np.uint64)
        physical = translate_lines(lines, 32, mapper)
        assert physical[0] % lines_per_page == 5
        # Different virtual pages map to different frames.
        assert physical[0] // lines_per_page != physical[1] // lines_per_page

    def test_same_page_lines_stay_together(self):
        mapper = RandomPageMapper(seed=3)
        lines = np.array([128, 129, 130], dtype=np.uint64)
        physical = translate_lines(lines, 32, mapper)
        assert physical[1] == physical[0] + 1
        assert physical[2] == physical[0] + 2

    def test_rejects_bad_line_size(self):
        mapper = RandomPageMapper(seed=1)
        with pytest.raises(ValueError):
            translate_lines(np.array([0], np.uint64), 3000, mapper)


class TestTapewormSimulator:
    def _runs(self, trace):
        return to_line_runs(trace.ifetch_addresses(), 32)

    def test_trials_vary(self, medium_trace):
        simulator = TapewormSimulator()
        # A mid-size cache, where mapping luck matters.
        geometry = CacheGeometry(32 * 1024, 32, 1)
        result = simulator.run_trials(
            self._runs(medium_trace), geometry, n_trials=4, base_seed=1
        )
        values = [t.cpi_instr for t in result.trials]
        assert len(set(values)) > 1
        assert result.std_cpi > 0

    def test_deterministic_given_seed(self, medium_trace):
        simulator = TapewormSimulator()
        geometry = CacheGeometry(16 * 1024, 32, 1)
        runs = self._runs(medium_trace)
        a = simulator.run_trials(runs, geometry, n_trials=3, base_seed=9)
        b = simulator.run_trials(runs, geometry, n_trials=3, base_seed=9)
        assert [t.cpi_instr for t in a.trials] == [t.cpi_instr for t in b.trials]

    def test_associativity_reduces_variability(self, medium_trace):
        """The paper's Figure 5 point: small amounts of associativity
        suppress mapping-induced variability."""
        simulator = TapewormSimulator()
        runs = self._runs(medium_trace)
        direct = simulator.run_trials(
            runs, CacheGeometry(32 * 1024, 32, 1), n_trials=5, base_seed=2
        )
        four_way = simulator.run_trials(
            runs, CacheGeometry(32 * 1024, 32, 4), n_trials=5, base_seed=2
        )
        assert four_way.std_cpi < direct.std_cpi

    def test_mean_tracks_mpi(self, medium_trace):
        simulator = TapewormSimulator(miss_penalty=15.0)
        geometry = CacheGeometry(16 * 1024, 32, 1)
        result = simulator.run_trials(
            self._runs(medium_trace), geometry, n_trials=3, base_seed=4
        )
        assert result.mean_cpi == pytest.approx(result.mean_mpi * 15.0)

    def test_single_trial_zero_std(self, medium_trace):
        simulator = TapewormSimulator()
        geometry = CacheGeometry(16 * 1024, 32, 1)
        result = simulator.run_trials(
            self._runs(medium_trace), geometry, n_trials=1, base_seed=5
        )
        assert result.std_cpi == 0.0

    def test_rejects_bad_args(self, medium_trace):
        with pytest.raises(ValueError):
            TapewormSimulator(miss_penalty=0)
        simulator = TapewormSimulator()
        with pytest.raises(ValueError):
            simulator.run_trials(
                self._runs(medium_trace),
                CacheGeometry(16 * 1024, 32, 1),
                n_trials=0,
            )
