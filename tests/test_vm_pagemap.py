"""Unit tests for page mapping policies."""

import numpy as np
import pytest

from repro.vm.pagemap import (
    BinHoppingMapper,
    IdentityPageMapper,
    PageColoringMapper,
    RandomPageMapper,
)


class TestIdentity:
    def test_translate_is_identity(self):
        mapper = IdentityPageMapper()
        for address in (0, 4095, 4096, 0x12345678):
            assert mapper.translate(address) == address

    def test_translate_many_matches_scalar(self):
        mapper = IdentityPageMapper()
        addresses = np.array([0, 5000, 123456], dtype=np.uint64)
        assert list(mapper.translate_many(addresses)) == [0, 5000, 123456]


class TestRandom:
    def test_offsets_preserved(self):
        mapper = RandomPageMapper(seed=0)
        physical = mapper.translate(0x1234)
        assert physical & 0xFFF == 0x234

    def test_mapping_is_stable(self):
        mapper = RandomPageMapper(seed=0)
        first = mapper.translate(0x5000)
        again = mapper.translate(0x5abc)
        assert first >> 12 == again >> 12

    def test_no_frame_reuse(self):
        mapper = RandomPageMapper(n_frames=64, seed=1)
        frames = {mapper.frame_of(page) for page in range(64)}
        assert len(frames) == 64

    def test_exhaustion(self):
        mapper = RandomPageMapper(n_frames=2, seed=1)
        mapper.frame_of(0)
        mapper.frame_of(1)
        with pytest.raises(MemoryError):
            mapper.frame_of(2)

    def test_seeds_give_different_mappings(self):
        a = RandomPageMapper(seed=1)
        b = RandomPageMapper(seed=2)
        pages = list(range(50))
        assert [a.frame_of(p) for p in pages] != [b.frame_of(p) for p in pages]

    def test_translate_many_consistent_with_scalar(self):
        scalar = RandomPageMapper(seed=5)
        vector = RandomPageMapper(seed=5)
        addresses = np.array(
            [0x1000, 0x2000, 0x1004, 0x3000, 0x2008], dtype=np.uint64
        )
        expected = [scalar.translate(int(a)) for a in addresses]
        assert list(vector.translate_many(addresses)) == expected

    def test_mapped_pages_counter(self):
        mapper = RandomPageMapper(seed=0)
        mapper.translate(0)
        mapper.translate(4096)
        mapper.translate(8)
        assert mapper.mapped_pages == 2


class TestColoring:
    def test_color_preserved(self):
        mapper = PageColoringMapper(n_colors=4)
        for page in range(32):
            frame = mapper.frame_of(page)
            assert frame % 4 == page % 4

    def test_frames_unique(self):
        mapper = PageColoringMapper(n_colors=4)
        frames = [mapper.frame_of(p) for p in range(40)]
        assert len(set(frames)) == 40

    def test_deterministic(self):
        a = PageColoringMapper(n_colors=8)
        b = PageColoringMapper(n_colors=8)
        pages = [3, 11, 19, 3, 27]
        assert [a.frame_of(p) for p in pages] == [b.frame_of(p) for p in pages]


class TestBinHopping:
    def test_round_robin_colors(self):
        mapper = BinHoppingMapper(n_colors=4)
        colors = [mapper.frame_of(p) % 4 for p in (100, 7, 42, 3, 9)]
        assert colors == [0, 1, 2, 3, 0]

    def test_allocation_order_dependence(self):
        # Bin hopping assigns by touch order, not page number.
        a = BinHoppingMapper(n_colors=4)
        b = BinHoppingMapper(n_colors=4)
        a.frame_of(10)
        a.frame_of(20)
        b.frame_of(20)
        b.frame_of(10)
        assert a.frame_of(10) != b.frame_of(10)

    def test_translate_many_first_touch_order(self):
        # Vectorized translation must allocate in stream order, matching
        # the scalar path.
        scalar = BinHoppingMapper(n_colors=8)
        vector = BinHoppingMapper(n_colors=8)
        addresses = np.array(
            [0x9000, 0x1000, 0x9008, 0x5000, 0x1010], dtype=np.uint64
        )
        expected = [scalar.translate(int(a)) for a in addresses]
        assert list(vector.translate_many(addresses)) == expected
