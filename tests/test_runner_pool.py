"""Tests for the process-pool sweep runner.

The load-bearing property: a parallel run is *bit-identical* to a
serial one — same cells, same arithmetic, merge in enumeration order —
so ``--jobs N`` is purely a wall-clock knob.
"""

import pytest

from repro.experiments import figure1, table1, table4, table5
from repro.experiments.common import ExperimentSettings
from repro.runner.pool import (
    CellExecutionError,
    ExperimentCell,
    has_cells,
    resolve_jobs,
    run_cells,
    run_experiment,
    run_report,
)
from repro.workloads.registry import clear_trace_cache, set_trace_cache_backend

SETTINGS = ExperimentSettings(n_instructions=20_000, seed=3)


@pytest.fixture(autouse=True)
def _no_disk_cache():
    from repro.workloads import registry

    saved = registry._disk_cache
    set_trace_cache_backend(None)
    yield
    registry._disk_cache = saved


def _double(x):
    return 2 * x


def _boom(x):
    raise ValueError(f"bad input {x}")


class TestRunCells:
    def _cells(self, n=5):
        return [
            ExperimentCell(key=("cell", i), fn=_double, args=(i,))
            for i in range(n)
        ]

    def test_serial_order(self):
        results, timings = run_cells(self._cells(), jobs=1)
        assert results == [0, 2, 4, 6, 8]
        assert [t.key for t in timings] == [("cell", i) for i in range(5)]

    def test_parallel_matches_serial(self):
        serial, _ = run_cells(self._cells(), jobs=1)
        parallel, timings = run_cells(self._cells(), jobs=4)
        assert parallel == serial
        assert [t.key for t in timings] == [("cell", i) for i in range(5)]

    def test_empty(self):
        results, timings = run_cells([], jobs=4)
        assert results == []
        assert timings == []

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1


class TestCellFailures:
    """Worker failures must name the cell that died (satellite fix)."""

    def _mixed_cells(self):
        return [
            ExperimentCell(key=("ok", 0), fn=_double, args=(1,)),
            ExperimentCell(key=("groff", "mach3", "8KB"), fn=_boom, args=(7,)),
        ]

    def test_serial_failure_names_cell(self):
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(self._mixed_cells(), jobs=1)
        message = str(excinfo.value)
        assert "('groff', 'mach3', '8KB')" in message
        assert "ValueError: bad input 7" in message
        assert excinfo.value.key == ("groff", "mach3", "8KB")
        # The original exception stays chained for serial runs.
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_parallel_failure_names_cell(self):
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(self._mixed_cells(), jobs=2)
        assert "('groff', 'mach3', '8KB')" in str(excinfo.value)
        assert excinfo.value.key == ("groff", "mach3", "8KB")

    def test_pickle_roundtrip(self):
        import pickle

        original = CellExecutionError(("a", 1), "ValueError: nope")
        clone = pickle.loads(pickle.dumps(original))
        assert clone.key == ("a", 1)
        assert clone.message == "ValueError: nope"
        assert str(clone) == str(original)

    def test_no_double_wrapping(self):
        def reraise():
            raise CellExecutionError(("inner",), "RuntimeError: x")

        cell = ExperimentCell(key=("outer",), fn=reraise)
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells([cell], jobs=1)
        assert excinfo.value.key == ("inner",)


class TestCellApi:
    @pytest.mark.parametrize("module", [table1, table4, table5, figure1])
    def test_modules_expose_cells(self, module):
        assert has_cells(module)
        cell_list = module.cells(SETTINGS)
        assert len(cell_list) >= 2
        assert len({cell.key for cell in cell_list}) == len(cell_list)

    def test_run_matches_cells_plus_merge(self):
        direct = table5.run(SETTINGS)
        cell_list = table5.cells(SETTINGS)
        rebuilt = table5.merge(
            SETTINGS, [cell.fn(*cell.args) for cell in cell_list]
        )
        assert direct.render() == rebuilt.render()


class TestParallelEqualsSerial:
    """The ISSUE's acceptance bar: --jobs 4 output == serial output."""

    @pytest.mark.parametrize("module", [table5, table4])
    def test_experiment_bit_identical(self, module):
        serial = module.run(SETTINGS)
        clear_trace_cache()  # force the parallel run to start cold
        result, report = run_experiment(module, SETTINGS, jobs=4)
        assert result.render() == serial.render()
        assert report.jobs >= 1
        assert len(report.cells) == len(module.cells(SETTINGS))

    def test_fallback_module_without_cells(self):
        from repro.experiments import table2

        assert not has_cells(table2)
        serial = table2.run(SETTINGS)
        result, report = run_experiment(table2, SETTINGS, jobs=4)
        assert result.render() == serial.render()
        assert len(report.cells) == 1


class TestRunReport:
    def test_report_matches_individual_runs(self):
        modules = {"table5": table5, "table4": table4}
        renderings, report = run_report(modules, SETTINGS, jobs=2)
        assert [name for name, _ in renderings] == ["table5", "table4"]
        assert renderings[0][1] == table5.run(SETTINGS).render()
        assert renderings[1][1] == table4.run(SETTINGS).render()
        assert report.label == "report"
        # Timing granularity is the plan cell, namespaced by experiment.
        expected = len(table5.plan_cells(SETTINGS)) + len(
            table4.plan_cells(SETTINGS)
        )
        assert len(report.cells) == expected
        assert report.plan is not None
        assert report.plan["cells_total"] == expected

    def test_timing_report_has_phases(self):
        clear_trace_cache()
        _, report = run_experiment(table5, SETTINGS, jobs=1)
        totals = report.phase_totals
        # A cold serial run synthesizes and simulates in-process.
        assert totals.get("synthesize", 0.0) > 0.0
        assert totals.get("simulate", 0.0) > 0.0
        assert report.wall_seconds > 0.0
