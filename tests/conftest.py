"""Shared fixtures.

Traces are expensive to synthesize, so the workload-level fixtures are
session-scoped and deliberately small; tests that need statistical
stability use the ``medium_trace`` fixture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.trace.record import Component, RefKind
from repro.trace.trace import Trace
from repro.workloads.generator import synthesize_trace
from repro.workloads.registry import clear_trace_cache, get_workload


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """A small IBS trace (fast; fine for structural assertions)."""
    return synthesize_trace(get_workload("gcc", "mach3"), 30_000, seed=7)


@pytest.fixture(scope="session")
def medium_trace() -> Trace:
    """A medium IBS trace (for loose statistical assertions)."""
    return synthesize_trace(get_workload("groff", "mach3"), 150_000, seed=7)


@pytest.fixture(scope="session")
def spec_trace() -> Trace:
    """A small SPEC trace."""
    return synthesize_trace(get_workload("eqntott", "spec92"), 30_000, seed=7)


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """A 1 KB direct-mapped cache, easy to reason about by hand."""
    return CacheGeometry(size_bytes=1024, line_size=32, associativity=1)


@pytest.fixture
def handmade_trace() -> Trace:
    """A fully hand-specified 6-reference trace."""
    addresses = np.array(
        [0x1000, 0x1004, 0x2000, 0x1008, 0x2000, 0x3000], dtype=np.uint64
    )
    kinds = np.array(
        [
            RefKind.IFETCH,
            RefKind.IFETCH,
            RefKind.LOAD,
            RefKind.IFETCH,
            RefKind.STORE,
            RefKind.IFETCH,
        ],
        dtype=np.uint8,
    )
    components = np.array(
        [
            Component.USER,
            Component.USER,
            Component.USER,
            Component.KERNEL,
            Component.KERNEL,
            Component.USER,
        ],
        dtype=np.uint8,
    )
    return Trace(addresses, kinds, components, label="handmade")


@pytest.fixture(autouse=True, scope="session")
def _bounded_trace_cache():
    """Drop cached traces after the session to bound memory."""
    yield
    clear_trace_cache()
