"""Unit tests for manifest exports (``repro.obs.export``).

Built on hand-rolled span records so every assertion is exact: subtree
rollups per cell, Trace Event Format structure, summary totals, and
the two-run diff.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    cell_rollups,
    diff_manifests,
    render_diff,
    render_summary,
    summarize,
    to_chrome_trace,
)


def _span(
    name,
    span_id,
    parent_id=None,
    start=100.0,
    wall=1.0,
    pid=10,
    thread="MainThread",
    **extra,
):
    record = {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": "t" * 32,
        "pid": pid,
        "thread": thread,
        "start": start,
        "wall_seconds": wall,
        "cpu_seconds": wall / 2,
        "attrs": {},
        "events": [],
        "phases": {},
        "engine_dispatch": {},
        "trace_cache": {},
    }
    record.update(extra)
    return record


def _manifest(spans, label="unit", provenance=None):
    roots = [span for span in spans if span["parent_id"] is None]
    return {
        "schema": 1,
        "trace_id": "t" * 32,
        "label": label,
        "created_at": 100.0,
        "provenance": provenance
        or {"package_version": "1.0", "generator_version": 2,
            "git": {"revision": "r", "describe": "d"}},
        "extra": {},
        "wall_seconds": max(s["wall_seconds"] for s in roots),
        "cells": [],  # force summarize() down the rollup path
        "spans": spans,
    }


def _two_cell_spans():
    return [
        _span("run", "root", wall=4.0),
        _span("cell", "c1", parent_id="root", wall=1.5,
              attrs={"key": ["groff", 1]},
              phases={"synthesize": 0.5}),
        _span("evaluate", "e1", parent_id="c1", wall=1.0,
              phases={"simulate": 0.9},
              engine_dispatch={"vectorized": {"demand": 2}},
              trace_cache={"memory-hit": 1}),
        _span("cell", "c2", parent_id="root", wall=2.0, pid=11,
              thread="worker", attrs={"key": ["sdet", 2]},
              phases={"simulate": 1.8},
              engine_dispatch={"reference": {"victim": 1}}),
    ]


class TestCellRollups:
    def test_subtree_aggregation(self):
        rollups = cell_rollups(_two_cell_spans())
        assert [cell["key"] for cell in rollups] == \
            [["groff", 1], ["sdet", 2]]
        groff = rollups[0]
        # The cell's own phases merge with its evaluate child's.
        assert groff["phases"] == {"synthesize": 0.5, "simulate": 0.9}
        assert groff["engine_dispatch"] == {"vectorized": {"demand": 2}}
        assert groff["trace_cache"] == {"memory-hit": 1}
        assert groff["wall_seconds"] == 1.5
        sdet = rollups[1]
        assert sdet["phases"] == {"simulate": 1.8}
        assert sdet["pid"] == 11

    def test_non_cell_spans_produce_no_rollups(self):
        assert cell_rollups([_span("run", "root")]) == []


class TestChromeTrace:
    def test_structure(self):
        spans = _two_cell_spans()
        spans[1]["events"] = [
            {"name": "phase", "time": 100.5,
             "attrs": {"phase": "synthesize", "seconds": 0.5}},
        ]
        trace = to_chrome_trace(_manifest(spans))
        json.dumps(trace)  # must be JSON-serializable as-is
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 4
        root = [e for e in complete if e["name"] == "run"][0]
        assert root["ts"] == 0.0  # timestamps rebased to the first span
        assert root["dur"] == 4.0e6
        assert root["args"]["trace_id"] == "t" * 32
        # Bridged annotations become thread-scoped instants.
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["name"] == "phase"
        assert instants[0]["ts"] == 0.5e6
        # One thread_name metadata record per (pid, thread).
        metadata = [e for e in events if e["ph"] == "M"]
        assert {(e["pid"], e["args"]["name"]) for e in metadata} == {
            (10, "MainThread"), (11, "worker")
        }
        assert trace["otherData"]["trace_id"] == "t" * 32

    def test_worker_pids_get_distinct_tids(self):
        trace = to_chrome_trace(_manifest(_two_cell_spans()))
        cells = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "cell"
        ]
        assert len({(e["pid"], e["tid"]) for e in cells}) == 2


class TestSummarize:
    def test_totals_over_all_spans(self):
        summary = summarize(_manifest(_two_cell_spans()))
        assert summary["phase_totals"] == {
            "synthesize": 0.5, "simulate": 0.9 + 1.8
        }
        assert summary["engine_dispatch"] == {
            "vectorized": {"demand": 2}, "reference": {"victim": 1}
        }
        assert summary["trace_cache"] == {"memory-hit": 1}
        assert summary["span_count"] == 4
        assert len(summary["cells"]) == 2

    def test_render_mentions_cells_and_phases(self):
        text = render_summary(summarize(_manifest(_two_cell_spans())))
        assert "trace " + "t" * 32 in text
        assert "simulate" in text
        assert "groff/1" in text and "sdet/2" in text


class TestDiff:
    def _b_spans(self):
        spans = _two_cell_spans()
        spans[0]["wall_seconds"] = 5.0
        spans[3]["wall_seconds"] = 3.0  # sdet slowed down
        spans[3]["phases"] = {"simulate": 2.8}
        return spans

    def test_deltas(self):
        diff = diff_manifests(
            _manifest(_two_cell_spans()), _manifest(self._b_spans())
        )
        assert diff["wall_delta_seconds"] == pytest.approx(1.0)
        assert diff["phases"]["simulate"]["delta"] == pytest.approx(1.0)
        sdet = [c for c in diff["cells"] if c["key"] == "sdet/2"][0]
        assert sdet["delta"] == pytest.approx(1.0)
        assert diff["provenance_changed"] == {}

    def test_provenance_drift_reported(self):
        drifted = _manifest(
            self._b_spans(),
            provenance={"package_version": "2.0", "generator_version": 2,
                        "git": {"revision": "r2", "describe": "d2"}},
        )
        diff = diff_manifests(_manifest(_two_cell_spans()), drifted)
        assert set(diff["provenance_changed"]) == {"package_version", "git"}
        text = render_diff(diff)
        assert "provenance changed" in text
        assert "'d' -> 'd2'" in text

    def test_unmatched_cells_flagged(self):
        solo = [_span("run", "root", wall=1.0),
                _span("cell", "c9", parent_id="root",
                      attrs={"key": ["only-a"]})]
        diff = diff_manifests(_manifest(solo), _manifest(_two_cell_spans()))
        unmatched = [c for c in diff["cells"] if c["delta"] is None]
        assert {c["key"] for c in unmatched} == {"only-a", "groff/1", "sdet/2"}
        assert "(only in a)" in render_diff(diff)
