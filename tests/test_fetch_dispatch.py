"""Engine-dispatch accounting: counters, observers, and report plumbing.

``repro.fetch.dispatch`` records which engine (vectorized kernel or
reference fallback) ran each fetch simulation.  These tests pin the
accounting layer end to end: the thread-local/process-total split, the
observer fan-out the serving tier hangs metrics on, the recording site
in :func:`repro.core.study.fetch_result`, and the ``engine_dispatch``
sections of the runner's timing reports.
"""

from __future__ import annotations

import pytest

from repro.caches.base import CacheGeometry
from repro.core.config import MemorySystemConfig
from repro.core.study import fetch_result
from repro.fetch import ECONOMY_MEMORY, dispatch
from repro.runner.pool import ExperimentCell, run_cells
from repro.runner.timing import CellTiming, TimingReport


@pytest.fixture(autouse=True)
def _clean_dispatch():
    dispatch.reset()
    dispatch.reset_totals()
    yield
    dispatch.reset()
    dispatch.reset_totals()


class TestAccumulators:
    def test_record_and_snapshot(self):
        dispatch.record("demand", dispatch.ENGINE_VECTORIZED)
        dispatch.record("demand", dispatch.ENGINE_VECTORIZED)
        dispatch.record("victim", dispatch.ENGINE_REFERENCE)
        snap = dispatch.snapshot()
        assert snap[("demand", dispatch.ENGINE_VECTORIZED)] == 2
        assert snap[("victim", dispatch.ENGINE_REFERENCE)] == 1

    def test_snapshot_reset(self):
        dispatch.record("demand", dispatch.ENGINE_VECTORIZED)
        first = dispatch.snapshot(reset=True)
        assert first
        assert dispatch.snapshot() == {}
        # Process totals survive a thread-local reset.
        assert dispatch.totals()[("demand", dispatch.ENGINE_VECTORIZED)] == 1

    def test_observers(self):
        seen = []
        observer = lambda m, e, n: seen.append((m, e, n))
        dispatch.add_observer(observer)
        try:
            dispatch.record("markov", dispatch.ENGINE_VECTORIZED, count=3)
        finally:
            dispatch.remove_observer(observer)
        dispatch.record("markov", dispatch.ENGINE_VECTORIZED)
        assert seen == [("markov", dispatch.ENGINE_VECTORIZED, 3)]

    def test_notify_merges_worker_counts(self):
        seen = []
        observer = lambda m, e, n: seen.append((m, e, n))
        dispatch.add_observer(observer)
        try:
            dispatch.notify({("demand", dispatch.ENGINE_REFERENCE): 5})
        finally:
            dispatch.remove_observer(observer)
        assert seen == [("demand", dispatch.ENGINE_REFERENCE, 5)]
        assert dispatch.totals()[("demand", dispatch.ENGINE_REFERENCE)] == 5

    def test_as_report_nests_by_engine(self):
        report = dispatch.as_report({
            ("demand", dispatch.ENGINE_VECTORIZED): 2,
            ("victim", dispatch.ENGINE_REFERENCE): 1,
        })
        assert report == {
            dispatch.ENGINE_VECTORIZED: {"demand": 2},
            dispatch.ENGINE_REFERENCE: {"victim": 1},
        }


class TestRecordingSite:
    CONFIG = MemorySystemConfig(
        name="dispatch", l1=CacheGeometry(8192, 32, 1), memory=ECONOMY_MEMORY
    )

    def test_fetch_result_records_engine(self, small_trace):
        runs = small_trace.ifetch_line_runs(32)
        fetch_result(runs, self.CONFIG, "demand", engine="vectorized")
        fetch_result(runs, self.CONFIG, "demand", engine="reference")
        fetch_result(runs, self.CONFIG, "victim", engine="auto")
        snap = dispatch.snapshot()
        assert snap[("demand", dispatch.ENGINE_VECTORIZED)] == 1
        assert snap[("demand", dispatch.ENGINE_REFERENCE)] == 1
        # Full kernel coverage: auto routes victim to the kernels now.
        assert snap[("victim", dispatch.ENGINE_VECTORIZED)] == 1
        assert ("victim", dispatch.ENGINE_REFERENCE) not in snap


def _dispatching_cell(mechanism: str, engine: str) -> int:
    dispatch.record(mechanism, engine)
    return 1


class TestReportPlumbing:
    def test_run_cells_captures_dispatch(self):
        cells = [
            ExperimentCell(
                key=("a",), fn=_dispatching_cell,
                args=("demand", dispatch.ENGINE_VECTORIZED),
            ),
            ExperimentCell(
                key=("b",), fn=_dispatching_cell,
                args=("victim", dispatch.ENGINE_REFERENCE),
            ),
        ]
        _results, timings = run_cells(cells, jobs=1)
        assert timings[0].dispatch == {
            ("demand", dispatch.ENGINE_VECTORIZED): 1
        }
        assert timings[1].dispatch == {
            ("victim", dispatch.ENGINE_REFERENCE): 1
        }

    def test_timing_report_aggregates_and_serializes(self):
        cells = (
            CellTiming(
                key=("a",), wall_seconds=0.5,
                dispatch={("demand", "vectorized"): 2},
            ),
            CellTiming(
                key=("b",), wall_seconds=0.5,
                dispatch={
                    ("demand", "vectorized"): 1,
                    ("victim", "reference"): 4,
                },
            ),
        )
        report = TimingReport(
            label="x", jobs=1, wall_seconds=1.0, cells=cells
        )
        assert report.dispatch_totals == {
            ("demand", "vectorized"): 3,
            ("victim", "reference"): 4,
        }
        record = report.to_dict()
        assert record["engine_dispatch"] == {
            "vectorized": {"demand": 3},
            "reference": {"victim": 4},
        }
        assert record["cells"][0]["engine_dispatch"] == {
            "vectorized": {"demand": 2}
        }
