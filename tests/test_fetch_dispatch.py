"""Engine-dispatch accounting: counters, observers, and report plumbing.

``repro.fetch.dispatch`` records which engine (vectorized kernel or
reference fallback) ran each fetch simulation.  These tests pin the
accounting layer end to end: the thread-local/process-total split, the
observer fan-out the serving tier hangs metrics on, the recording site
in :func:`repro.core.study.fetch_result`, and the ``engine_dispatch``
sections of the runner's timing reports.
"""

from __future__ import annotations

import threading

import pytest

from repro.caches.base import CacheGeometry
from repro.core.config import MemorySystemConfig
from repro.core.study import fetch_result
from repro.fetch import ECONOMY_MEMORY, dispatch
from repro.runner.pool import ExperimentCell, run_cells
from repro.runner.timing import CellTiming, TimingReport


@pytest.fixture(autouse=True)
def _clean_dispatch():
    dispatch.reset()
    dispatch.reset_totals()
    yield
    dispatch.reset()
    dispatch.reset_totals()


class TestAccumulators:
    def test_record_and_snapshot(self):
        dispatch.record("demand", dispatch.ENGINE_VECTORIZED)
        dispatch.record("demand", dispatch.ENGINE_VECTORIZED)
        dispatch.record("victim", dispatch.ENGINE_REFERENCE)
        snap = dispatch.snapshot()
        assert snap[("demand", dispatch.ENGINE_VECTORIZED)] == 2
        assert snap[("victim", dispatch.ENGINE_REFERENCE)] == 1

    def test_snapshot_reset(self):
        dispatch.record("demand", dispatch.ENGINE_VECTORIZED)
        first = dispatch.snapshot(reset=True)
        assert first
        assert dispatch.snapshot() == {}
        # Process totals survive a thread-local reset.
        assert dispatch.totals()[("demand", dispatch.ENGINE_VECTORIZED)] == 1

    def test_observers(self):
        seen = []
        observer = lambda m, e, n: seen.append((m, e, n))
        dispatch.add_observer(observer)
        try:
            dispatch.record("markov", dispatch.ENGINE_VECTORIZED, count=3)
        finally:
            dispatch.remove_observer(observer)
        dispatch.record("markov", dispatch.ENGINE_VECTORIZED)
        assert seen == [("markov", dispatch.ENGINE_VECTORIZED, 3)]

    def test_notify_merges_worker_counts(self):
        seen = []
        observer = lambda m, e, n: seen.append((m, e, n))
        dispatch.add_observer(observer)
        try:
            dispatch.notify({("demand", dispatch.ENGINE_REFERENCE): 5})
        finally:
            dispatch.remove_observer(observer)
        assert seen == [("demand", dispatch.ENGINE_REFERENCE, 5)]
        assert dispatch.totals()[("demand", dispatch.ENGINE_REFERENCE)] == 5

    def test_concurrent_observer_churn_while_recording(self):
        # Observer registration must be safe against concurrent
        # mutation: record() snapshots the list under a dedicated lock
        # (separate from the totals lock, so callbacks never run with
        # the counter lock held).
        stop = threading.Event()
        errors = []

        def churn():
            def observer(mechanism, engine, count):
                pass
            try:
                while not stop.is_set():
                    dispatch.add_observer(observer)
                    dispatch.remove_observer(observer)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        seen = []
        keeper = lambda m, e, n: seen.append(n)
        dispatch.add_observer(keeper)
        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(300):
                dispatch.record("demand", dispatch.ENGINE_VECTORIZED)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            dispatch.remove_observer(keeper)
        assert not errors
        assert len(seen) == 300
        assert (
            dispatch.totals()[("demand", dispatch.ENGINE_VECTORIZED)] == 300
        )

    def test_observer_may_reenter_counters(self):
        # Regression guard for the lock split: an observer that reads
        # the totals back must not deadlock on the counter lock.
        readback = []
        observer = lambda m, e, n: readback.append(dict(dispatch.totals()))
        dispatch.add_observer(observer)
        try:
            dispatch.record("demand", dispatch.ENGINE_VECTORIZED)
        finally:
            dispatch.remove_observer(observer)
        assert readback[0][("demand", dispatch.ENGINE_VECTORIZED)] == 1

    def test_as_report_nests_by_engine(self):
        report = dispatch.as_report({
            ("demand", dispatch.ENGINE_VECTORIZED): 2,
            ("victim", dispatch.ENGINE_REFERENCE): 1,
        })
        assert report == {
            dispatch.ENGINE_VECTORIZED: {"demand": 2},
            dispatch.ENGINE_REFERENCE: {"victim": 1},
        }


class TestRecordingSite:
    CONFIG = MemorySystemConfig(
        name="dispatch", l1=CacheGeometry(8192, 32, 1), memory=ECONOMY_MEMORY
    )

    def test_fetch_result_records_engine(self, small_trace):
        runs = small_trace.ifetch_line_runs(32)
        fetch_result(runs, self.CONFIG, "demand", engine="vectorized")
        fetch_result(runs, self.CONFIG, "demand", engine="reference")
        fetch_result(runs, self.CONFIG, "victim", engine="auto")
        snap = dispatch.snapshot()
        assert snap[("demand", dispatch.ENGINE_VECTORIZED)] == 1
        assert snap[("demand", dispatch.ENGINE_REFERENCE)] == 1
        # Full kernel coverage: auto routes victim to the kernels now.
        assert snap[("victim", dispatch.ENGINE_VECTORIZED)] == 1
        assert ("victim", dispatch.ENGINE_REFERENCE) not in snap


def _dispatching_cell(mechanism: str, engine: str) -> int:
    dispatch.record(mechanism, engine)
    return 1


class TestReportPlumbing:
    def test_run_cells_captures_dispatch(self):
        cells = [
            ExperimentCell(
                key=("a",), fn=_dispatching_cell,
                args=("demand", dispatch.ENGINE_VECTORIZED),
            ),
            ExperimentCell(
                key=("b",), fn=_dispatching_cell,
                args=("victim", dispatch.ENGINE_REFERENCE),
            ),
        ]
        _results, timings = run_cells(cells, jobs=1)
        assert timings[0].dispatch == {
            ("demand", dispatch.ENGINE_VECTORIZED): 1
        }
        assert timings[1].dispatch == {
            ("victim", dispatch.ENGINE_REFERENCE): 1
        }

    def test_timing_report_aggregates_and_serializes(self):
        cells = (
            CellTiming(
                key=("a",), wall_seconds=0.5,
                dispatch={("demand", "vectorized"): 2},
            ),
            CellTiming(
                key=("b",), wall_seconds=0.5,
                dispatch={
                    ("demand", "vectorized"): 1,
                    ("victim", "reference"): 4,
                },
            ),
        )
        report = TimingReport(
            label="x", jobs=1, wall_seconds=1.0, cells=cells
        )
        assert report.dispatch_totals == {
            ("demand", "vectorized"): 3,
            ("victim", "reference"): 4,
        }
        record = report.to_dict()
        assert record["engine_dispatch"] == {
            "vectorized": {"demand": 3},
            "reference": {"victim": 4},
        }
        assert record["cells"][0]["engine_dispatch"] == {
            "vectorized": {"demand": 2}
        }
