"""Unit tests for the LRU set."""

import pytest

from repro._util.lru import LruSet


class TestLruSet:
    def test_insert_until_full_no_eviction(self):
        lru = LruSet(3)
        assert lru.touch("a") is None
        assert lru.touch("b") is None
        assert lru.touch("c") is None
        assert len(lru) == 3

    def test_eviction_order_is_lru(self):
        lru = LruSet(2)
        lru.touch("a")
        lru.touch("b")
        victim = lru.touch("c")
        assert victim == "a"
        assert "b" in lru and "c" in lru

    def test_hit_refreshes_recency(self):
        lru = LruSet(2)
        lru.touch("a")
        lru.touch("b")
        lru.touch("a")  # refresh: b becomes LRU
        assert lru.touch("c") == "b"
        assert "a" in lru

    def test_hit_returns_none(self):
        lru = LruSet(2)
        lru.touch("a")
        assert lru.touch("a") is None
        assert len(lru) == 1

    def test_peek_lru(self):
        lru = LruSet(3)
        assert lru.peek_lru() is None
        lru.touch(1)
        lru.touch(2)
        assert lru.peek_lru() == 1
        lru.touch(1)
        assert lru.peek_lru() == 2

    def test_discard(self):
        lru = LruSet(2)
        lru.touch("x")
        assert lru.discard("x") is True
        assert lru.discard("x") is False
        assert "x" not in lru

    def test_iteration_order_lru_to_mru(self):
        lru = LruSet(3)
        for key in ("a", "b", "c"):
            lru.touch(key)
        lru.touch("a")
        assert list(lru) == ["b", "c", "a"]

    def test_clear(self):
        lru = LruSet(2)
        lru.touch(1)
        lru.clear()
        assert len(lru) == 0
        assert lru.capacity == 2

    def test_capacity_one(self):
        lru = LruSet(1)
        assert lru.touch("a") is None
        assert lru.touch("b") == "a"

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LruSet(0)
