"""Unit tests for two-level cache simulation."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.caches.hierarchy import CacheHierarchy
from repro.caches.vectorized import miss_mask_set_associative


def _lines(seed=0, n=5000, span=2000):
    return np.random.default_rng(seed).integers(0, span, n).astype(np.uint64)


class TestCacheHierarchy:
    def test_l1_only(self):
        hierarchy = CacheHierarchy(CacheGeometry(1024, 32, 1))
        l1, l2 = hierarchy.simulate(_lines(), base_line_size=32)
        assert l2 is None
        assert l1.accesses == 5000
        assert 0 < l1.misses <= 5000

    def test_l2_sees_full_stream_by_default(self):
        lines = _lines(seed=1)
        hierarchy = CacheHierarchy(
            CacheGeometry(1024, 32, 1), CacheGeometry(16384, 32, 1)
        )
        _l1, l2 = hierarchy.simulate(lines, base_line_size=32)
        standalone = int(miss_mask_set_associative(lines, 512, 1).sum())
        assert l2.misses == standalone
        assert l2.accesses == len(lines)

    def test_filtered_l2_sees_only_l1_misses(self):
        lines = _lines(seed=2)
        hierarchy = CacheHierarchy(
            CacheGeometry(1024, 32, 1), CacheGeometry(16384, 32, 1)
        )
        l1, l2 = hierarchy.simulate(lines, base_line_size=32, filtered_l2=True)
        assert l2.accesses == l1.misses

    def test_l2_smaller_line_than_l1_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                CacheGeometry(1024, 64, 1), CacheGeometry(16384, 32, 1)
            )

    def test_l2_coarser_line(self):
        hierarchy = CacheHierarchy(
            CacheGeometry(1024, 32, 1), CacheGeometry(16384, 128, 1)
        )
        _l1, l2 = hierarchy.simulate(_lines(seed=3), base_line_size=32)
        assert l2 is not None and l2.misses > 0

    def test_miss_ratio_and_mpi(self):
        hierarchy = CacheHierarchy(CacheGeometry(1024, 32, 1))
        l1, _ = hierarchy.simulate(_lines(seed=4), base_line_size=32)
        assert l1.miss_ratio == pytest.approx(l1.misses / l1.accesses)
        assert l1.misses_per_instruction(10_000) == pytest.approx(
            l1.misses / 10_000
        )
        with pytest.raises(ValueError):
            l1.misses_per_instruction(0)

    def test_bigger_l2_fewer_misses(self):
        lines = _lines(seed=5, span=4000)
        small = CacheHierarchy(
            CacheGeometry(1024, 32, 1), CacheGeometry(8192, 32, 1)
        ).simulate(lines, 32)[1]
        large = CacheHierarchy(
            CacheGeometry(1024, 32, 1), CacheGeometry(65536, 32, 1)
        ).simulate(lines, 32)[1]
        assert large.misses < small.misses
