"""Unit tests for the sub-block (sector) cache."""

import pytest

from repro.caches.base import CacheGeometry
from repro.caches.subblock import SubblockCache


def _cache(size=1024, line=64, ways=1, sub=16):
    return SubblockCache(CacheGeometry(size, line, ways), subblock_size=sub)


class TestSubblockCache:
    def test_line_miss_then_hit(self):
        cache = _cache()
        assert cache.access_word(0x100) == SubblockCache.LINE_MISS
        assert cache.access_word(0x104) == SubblockCache.HIT

    def test_tail_fill_policy(self):
        # Miss at sub-block 1 of 4: fills sub-blocks 1..3, not 0.
        cache = _cache(line=64, sub=16)
        assert cache.access_word(0x110) == SubblockCache.LINE_MISS  # sub 1
        assert cache.access_word(0x120) == SubblockCache.HIT  # sub 2
        assert cache.access_word(0x130) == SubblockCache.HIT  # sub 3
        assert cache.access_word(0x100) == SubblockCache.SUBBLOCK_MISS  # sub 0

    def test_subblock_miss_fills_tail(self):
        cache = _cache(line=64, sub=16)
        cache.access_word(0x130)  # fills only sub 3
        assert cache.access_word(0x100) == SubblockCache.SUBBLOCK_MISS
        # now all four sub-blocks valid
        assert cache.valid_subblocks(0x100 >> 6) == 4

    def test_miss_at_line_start_fills_whole_line(self):
        cache = _cache(line=64, sub=16)
        cache.access_word(0x100)
        assert cache.valid_subblocks(0x100 >> 6) == 4

    def test_eviction_clears_valid_bits(self):
        cache = _cache(size=256, line=64, ways=1, sub=16)  # 4 sets
        cache.access_word(0x000)
        cache.access_word(0x100)  # same set (4 sets * 64B = 256B stride)
        assert cache.access_word(0x000) == SubblockCache.LINE_MISS
        assert cache.valid_subblocks(0x100 >> 6) == 0

    def test_stats_and_fill_counters(self):
        cache = _cache(line=64, sub=16)
        cache.access_word(0x130)  # line miss, fills 1 sub-block
        cache.access_word(0x100)  # sub-block miss, fills 3
        assert cache.line_misses == 1
        assert cache.subblock_misses == 1
        assert cache.subblocks_filled == 4
        assert cache.stats.misses == 2

    def test_subblock_equal_to_line_degenerates(self):
        cache = _cache(line=32, sub=32)
        assert cache.access_word(0x100) == SubblockCache.LINE_MISS
        assert cache.access_word(0x11C) == SubblockCache.HIT

    def test_rejects_subblock_larger_than_line(self):
        with pytest.raises(ValueError):
            _cache(line=32, sub=64)

    def test_paper_claim_subblock_beats_long_line(self, medium_trace):
        """Section 5.2 footnote: a 64 B line with 16 B sub-blocks performs
        almost as well as a 16 B line with 3-line prefetch, and far
        better than the plain 64 B line on refill traffic."""
        plain_fills = 0
        sub = _cache(size=8192, line=64, sub=16)
        addresses = medium_trace.ifetch_addresses()[:60_000]
        for address in addresses.tolist():
            sub.access_word(address)
        # The sub-block cache must fill significantly fewer 16-byte
        # units than 4x its line misses (a plain 64 B cache refills 4
        # units per miss).
        plain_equiv = 4 * (sub.line_misses + sub.subblock_misses)
        assert sub.subblocks_filled < plain_equiv
