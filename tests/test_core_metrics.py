"""Unit tests for MPI measurement with warmup handling."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.core.metrics import (
    MpiMeasurement,
    measure_mpi,
    measure_mpi_lines,
    measure_three_cs,
    warmup_cut,
)
from repro.trace.rle import LineRuns, to_line_runs


def _runs(addresses, line_size=32):
    return to_line_runs(np.asarray(addresses, dtype=np.uint64), line_size)


class TestWarmupCut:
    def test_zero_warmup(self):
        runs = _runs([0, 32, 64])
        cut, measured = warmup_cut(runs, 0.0)
        assert cut == 0
        assert measured == 3

    def test_half(self):
        runs = _runs([i * 32 for i in range(10)])
        cut, measured = warmup_cut(runs, 0.5)
        assert cut == 5
        assert measured == 5

    def test_weighted_runs(self):
        # Runs carrying different instruction counts: the cut respects
        # instructions, not run count.
        runs = LineRuns(
            lines=np.array([0, 1, 2], dtype=np.uint64),
            counts=np.array([80, 10, 10], dtype=np.int64),
            first_offsets=np.zeros(3, dtype=np.int64),
            line_size=32,
        )
        cut, measured = warmup_cut(runs, 0.5)
        assert cut == 1  # the 80-instruction run covers the warmup
        assert measured == 20

    def test_never_cuts_everything(self):
        runs = _runs([0])
        cut, measured = warmup_cut(runs, 0.9)
        assert cut == 0 or measured > 0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            warmup_cut(_runs([0]), 1.0)


class TestMeasureMpi:
    def test_basic(self):
        geometry = CacheGeometry(1024, 32, 1)
        result = measure_mpi(_runs([0, 32, 0, 32]), geometry, 0.0)
        assert result.misses == 2
        assert result.instructions == 4
        assert result.mpi == pytest.approx(0.5)
        assert result.mpi_per_100 == pytest.approx(50.0)

    def test_cpi_contribution(self):
        measurement = MpiMeasurement(misses=10, instructions=1000)
        assert measurement.cpi_contribution(7) == pytest.approx(0.07)

    def test_warmup_excludes_cold_misses(self):
        geometry = CacheGeometry(1024, 32, 1)
        # Touch 8 lines, then loop over them (all hits).
        addresses = [i * 32 for i in range(8)] + [i * 32 for i in range(8)] * 4
        no_warmup = measure_mpi(_runs(addresses), geometry, 0.0)
        warm = measure_mpi(_runs(addresses), geometry, 0.3)
        assert no_warmup.misses == 8
        assert warm.misses == 0

    def test_coarser_geometry_allowed(self):
        runs = _runs([0, 16, 32, 48], line_size=16)
        geometry = CacheGeometry(1024, 32, 1)
        result = measure_mpi(runs, geometry, 0.0)
        assert result.misses == 2  # two 32-byte lines

    def test_finer_geometry_rejected(self):
        runs = _runs([0], line_size=32)
        with pytest.raises(ValueError):
            measure_mpi(runs, CacheGeometry(1024, 16, 1), 0.0)

    def test_empty_measurement(self):
        measurement = MpiMeasurement(misses=0, instructions=0)
        assert measurement.mpi == 0.0


class TestMeasureMpiLines:
    def test_per_reference_default(self):
        geometry = CacheGeometry(1024, 32, 1)
        lines = np.array([0, 1, 0, 1], dtype=np.uint64)
        result = measure_mpi_lines(lines, geometry, 32, warmup_fraction=0.0)
        assert result.misses == 2
        assert result.instructions == 4

    def test_with_counts(self):
        geometry = CacheGeometry(1024, 32, 1)
        lines = np.array([0, 1], dtype=np.uint64)
        counts = np.array([10, 90], dtype=np.int64)
        result = measure_mpi_lines(
            lines, geometry, 32, instruction_counts=counts, warmup_fraction=0.0
        )
        assert result.instructions == 100


class TestMeasureThreeCs:
    def test_components_match_plain_measurement(self, medium_trace):
        geometry = CacheGeometry(8192, 32, 1)
        runs = to_line_runs(medium_trace.ifetch_addresses(), 32)
        breakdown, instructions = measure_three_cs(runs, geometry, 0.3)
        plain = measure_mpi(runs, geometry, 0.3)
        assert instructions == plain.instructions
        assert breakdown.total == pytest.approx(plain.misses, abs=plain.misses * 0.02)

    def test_associativity_removes_conflicts(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses(), 32)
        dm, _ = measure_three_cs(runs, CacheGeometry(8192, 32, 1), 0.3)
        eight, _ = measure_three_cs(runs, CacheGeometry(8192, 32, 8), 0.3)
        assert eight.conflict == 0
        assert dm.conflict > 0
