"""Integration tests for the extension experiments and Table 2."""

import pytest

from repro.experiments import (
    ext_conflict,
    ext_multiissue,
    ext_placement,
    ext_prefetch,
    ext_subblock,
    table2,
)
from repro.experiments.common import ExperimentSettings

SETTINGS = ExperimentSettings(n_instructions=100_000, seed=0)


class TestTable2:
    def test_all_workloads_listed(self):
        result = table2.run()
        assert len(result.workloads) == 8
        text = result.render()
        assert "groff" in text and "Mach 3.0" in text

    def test_mach_has_more_layers(self):
        result = table2.run()
        assert result.os_layers["Mach 3.0"] > result.os_layers["Ultrix 3.1"]


class TestExtPrefetch:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_prefetch.run(SETTINGS)

    def test_every_scheme_beats_demand(self, result):
        demand = result.mean("demand")
        for scheme in ("stream-buffer-4", "markov", "hybrid"):
            assert result.mean(scheme) < demand, scheme

    def test_hybrid_beats_pure_markov(self, result):
        assert result.mean("hybrid") < result.mean("markov")

    def test_sequential_structure_dominates(self, result):
        """On instruction streams, sequential lookahead (stream buffer)
        remains the strongest single mechanism — the reason the paper's
        Table 8 focuses there."""
        assert result.mean("stream-buffer-4") <= result.mean("markov")

    def test_render(self, result):
        assert "non-sequential" in result.render()


class TestExtConflict:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_conflict.run(SETTINGS, sizes=(8192, 32768))

    def test_associativity_is_the_strongest_remedy(self, result):
        for size in (8192, 32768):
            dm = result.cells[(size, "direct-mapped")]
            assert result.cells[(size, "2-way")] < dm
            assert result.cells[(size, "8-way")] <= result.cells[(size, "2-way")]
            # The paper's implied ranking: associativity beats the
            # reactive CML mechanism.
            assert result.cells[(size, "2-way")] < result.cells[(size, "cml")]

    def test_victim_cache_between_dm_and_2way(self, result):
        for size in (8192, 32768):
            dm = result.cells[(size, "direct-mapped")]
            assert result.cells[(size, "victim-4")] <= dm * 1.01

    def test_cml_roughly_neutral(self, result):
        """CML detects conflicts only after they hurt (the paper's
        criticism); at these cache sizes recoloring is near-neutral."""
        for size in (8192, 32768):
            dm = result.cells[(size, "direct-mapped")]
            assert result.cells[(size, "cml")] == pytest.approx(dm, rel=0.10)

    def test_render(self, result):
        assert "remedies" in result.render()


class TestExtPlacement:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_placement.run(
            SETTINGS, workload_names=("groff", "nroff", "gs", "mpeg_play")
        )

    def test_placement_helps_isolated_user_tasks(self, result):
        # The placement literature's setting: single task, own cache.
        assert result.mean_user_reduction() > 0.02

    def test_interleaving_erodes_the_gain(self, result):
        # The OS-intensive setting: cross-component interference leaves
        # per-task placement roughly neutral.
        assert result.mean_reduction() < result.mean_user_reduction()
        assert abs(result.mean_reduction()) < 0.15

    def test_render(self, result):
        assert "placement" in result.render()


class TestExtSubblock:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_subblock.run(SETTINGS)

    def test_all_three_configurations_close(self, result):
        """The paper's footnote: the three designs land in the same
        performance class."""
        values = list(result.cells.values())
        assert max(values) < 1.6 * min(values)

    def test_render(self, result):
        assert "sub-block" in result.render()


class TestExtMultiIssue:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_multiissue.run(SETTINGS)

    def test_ibs_floor_dominates_wide_issue(self, result):
        assert result.stall_share("ibs-mach3", 4) > 0.30
        assert result.stall_share("spec92", 4) < result.stall_share(
            "ibs-mach3", 4
        )

    def test_monotone_in_width(self, result):
        shares = [result.stall_share("ibs-mach3", w) for w in (1, 2, 4, 8)]
        assert shares == sorted(shares)

    def test_render(self, result):
        assert "multi-issue" in result.render()


class TestExtContext:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_context

        return ext_context.run(SETTINGS)

    def test_sharing_always_costs(self, result):
        from repro.experiments.ext_context import QUANTA, SIZES

        for size in SIZES:
            for quantum in QUANTA:
                assert result.overhead(size, quantum) > 0

    def test_shorter_quanta_cost_more(self, result):
        from repro.experiments.ext_context import SIZES

        for size in SIZES:
            assert result.overhead(size, 1_000) > result.overhead(size, 20_000)

    def test_render(self, result):
        assert "multiprogramming" in result.render()


class TestExtComponents:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_components

        return ext_components.run(
            SETTINGS, workload_names=("groff", "mpeg_play", "gs")
        )

    def test_shares_sum_to_one(self, result):
        for workload, shares in result.rows.items():
            assert sum(s.execution for s in shares.values()) == pytest.approx(
                1.0, abs=0.01
            )
            assert sum(s.misses for s in shares.values()) == pytest.approx(
                1.0, abs=0.01
            )

    def test_minor_components_miss_disproportionately(self, result):
        """OS/server code runs in short scattered bursts, so components
        with small execution shares show concentration > 1."""
        from repro.trace.record import Component

        elevated = 0
        total = 0
        for shares in result.rows.values():
            for component, share in shares.items():
                if component != Component.USER and share.execution < 0.25:
                    total += 1
                    if share.concentration > 1.0:
                        elevated += 1
        assert total > 0
        assert elevated / total > 0.6

    def test_render(self, result):
        assert "attribution" in result.render()


class TestExtSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_sensitivity

        return ext_sensitivity.run(
            ExperimentSettings(n_instructions=80_000, seed=0)
        )

    def test_expected_directions(self, result):
        from repro.experiments.ext_sensitivity import KNOBS

        for knob, (_lo, _hi, expected) in KNOBS.items():
            if expected == 0:
                continue
            assert result.slope_sign(knob) == expected, knob

    def test_baseline_near_calibration(self, result):
        assert 5.0 < result.baseline < 8.0

    def test_render(self, result):
        assert "sensitivity" in result.render()


class TestFigure4LookupPenaltyAblation:
    def test_penalty_raises_cpi_but_keeps_ordering(self):
        from repro.experiments import figure4

        plain = figure4.run(SETTINGS)
        penalized = figure4.run(SETTINGS, associative_lookup_penalty=True)
        # Associative points pay more with the penalty; DM unchanged.
        for config in figure4.CONFIG_NAMES:
            assert penalized.cells[(config, 1)] == pytest.approx(
                plain.cells[(config, 1)]
            )
            assert penalized.cells[(config, 8)] > plain.cells[(config, 8)]
            # The paper's footnote: the penalty does not overturn the
            # benefit of associativity.
            assert penalized.cells[(config, 8)] < penalized.cells[(config, 1)]


class TestExtMethodology:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_methodology

        return ext_methodology.run(SETTINGS)

    def test_additive_method_is_accurate(self, result):
        """The paper's independent-measurement method agrees with one
        integrated simulation within ~15%."""
        assert abs(result.additive_error) < 0.15

    def test_shared_l2_is_a_real_lower_bound(self, result):
        """The paper: instruction-only L2 results 'represent a lower
        bound relative to an actual system'.  Sharing with data indeed
        raises fetch CPI substantially."""
        assert result.shared_data_penalty > 0.10

    def test_render(self, result):
        assert "methodology" in result.render()


class TestExtBranch:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_branch

        return ext_branch.run(SETTINGS)

    def test_ibs_redirects_cost_more_than_spec(self, result):
        from repro.experiments.ext_branch import BTB_SIZES

        for size in BTB_SIZES:
            ibs = result.cells[("ibs-mach3", size)][1]
            spec = result.cells[("spec92", size)][1]
            assert ibs > spec

    def test_capacity_is_not_the_bottleneck(self, result):
        """The interesting (negative) finding: growing the BTB 64x
        barely moves the misprediction rate — bloated code's redirect
        problem is inherent transfer richness, not table capacity."""
        from repro.experiments.ext_branch import BTB_SIZES

        for suite in ("ibs-mach3", "spec92"):
            small = result.cells[(suite, min(BTB_SIZES))][1]
            large = result.cells[(suite, max(BTB_SIZES))][1]
            assert abs(large - small) < 0.35 * small

    def test_rates_in_plausible_band(self, result):
        for (suite, _size), (taken, mispredict) in result.cells.items():
            assert 0.05 < taken < 0.40
            assert 0.02 < mispredict < 0.35

    def test_render(self, result):
        assert "branch" in result.render()


class TestExtArea:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_area

        return ext_area.run(
            ExperimentSettings(n_instructions=80_000, seed=0),
            budgets=ext_area.BUDGETS_RBE[:2],
        )

    def test_ibs_best_always_includes_associative_l2(self, result):
        from repro.experiments import ext_area

        for budget in ext_area.BUDGETS_RBE[:2]:
            best = result.best("ibs-mach3", budget)
            assert best.l2 is not None
            assert best.l2.associativity > 1

    def test_more_area_never_hurts(self, result):
        from repro.experiments import ext_area

        budgets = ext_area.BUDGETS_RBE[:2]
        for suite in ("ibs-mach3", "spec92"):
            values = [result.best(suite, b).cpi_instr for b in budgets]
            assert values == sorted(values, reverse=True)

    def test_ibs_has_more_cpi_at_stake(self, result):
        from repro.experiments import ext_area

        for budget in ext_area.BUDGETS_RBE[:2]:
            assert result.stakes("ibs-mach3", budget) > 2 * result.stakes(
                "spec92", budget
            )

    def test_render(self, result):
        assert "die-area" in result.render()


class TestExtTlb:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_tlb

        return ext_tlb.run(SETTINGS, workload_names=("gs", "sdet", "nroff"))

    def test_mach_tlb_costs_more(self, result):
        for name in ("gs", "sdet", "nroff"):
            mach = result.rows[(name, "mach3")]
            ultrix = result.rows[(name, "ultrix")]
            assert mach.cpi_taxonomy > ultrix.cpi_taxonomy

    def test_effective_refill_above_user_fast_path(self, result):
        from repro.tlb.mach_tlb import USER_REFILL_CYCLES

        assert result.mean_effective_refill("mach3") > USER_REFILL_CYCLES

    def test_os_heavy_workloads_take_fewer_fast_paths(self, result):
        # sdet (70% kernel) takes a smaller user-path share than nroff
        # (80% user).
        assert (
            result.rows[("sdet", "mach3")].user_miss_share
            < result.rows[("nroff", "mach3")].user_miss_share
        )

    def test_render(self, result):
        assert "taxonomy" in result.render()


class TestExtSampling:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_sampling

        return ext_sampling.run(
            ExperimentSettings(n_instructions=200_000, seed=0),
            fractions=(0.1, 0.5),
        )

    def test_errors_bounded(self, result):
        for (_suite, _fraction), (error, _speedup) in result.cells.items():
            assert error < 0.30

    def test_more_sampling_never_less_accurate_much(self, result):
        small = result.error("ibs-mach3", 0.1)
        large = result.error("ibs-mach3", 0.5)
        assert large <= small + 0.05

    def test_speedup_decreases_with_fraction(self, result):
        assert (
            result.cells[("ibs-mach3", 0.1)][1]
            > result.cells[("ibs-mach3", 0.5)][1]
        )

    def test_render(self, result):
        assert "sampled" in result.render()


class TestExtBloat:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_bloat

        return ext_bloat.run(
            ExperimentSettings(n_instructions=100_000, seed=0),
            stages=(("1x", 1.0, 1.0), ("1.5x", 1.5, 0.8), ("3x", 3.0, 0.6)),
        )

    def test_mpi_monotone_in_bloat(self, result):
        series = result.mpi_series()
        assert series == sorted(series)

    def test_optimized_system_cpi_grows(self, result):
        values = [s.cpi_optimized for s in result.stages.values()]
        assert values[-1] > values[0]
        assert result.growth() > 1.3

    def test_render(self, result):
        assert "bloat" in result.render()
