"""Calibration regression tests.

The shipped workload definitions were calibrated against the paper's
Table 4 (see ``tools/calibrate.py``).  These tests pin that calibration:
if a synthesizer change shifts the workload models' miss behaviour,
they fail and the calibration must be re-run.

Re-pinned for generator v2 (the batched synthesizer): the targets and
tolerances are unchanged, but the per-workload estimator now averages
four seeds instead of two — v2 synthesis is cheap enough that the
tighter estimate costs nothing, and it keeps single-seed layout
variance (the paper's Figure 5 effect) from dominating the comparison.
"""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.core.metrics import measure_mpi
from repro.experiments import figure1
from repro.experiments.common import ExperimentSettings
from repro.trace.rle import to_line_runs
from repro.workloads.generator import synthesize_trace
from repro.workloads.ibs import IBS_WORKLOADS
from repro.workloads.registry import get_workload, suite_workloads

REFERENCE = CacheGeometry(8192, 32, 1)
N = 300_000


def _mpi(workload, n=N, seeds=(1, 2, 3, 4)):
    """Mean MPI over a few seeds (individual runs vary with code
    layout, exactly as the paper's Figure 5 documents for real runs)."""
    values = []
    for seed in seeds:
        trace = synthesize_trace(workload, n, seed=seed)
        runs = to_line_runs(trace.ifetch_addresses(), 32)
        values.append(measure_mpi(runs, REFERENCE).mpi_per_100)
    return float(np.mean(values))


@pytest.mark.parametrize("name", sorted(IBS_WORKLOADS))
def test_ibs_workload_hits_table4_target(name):
    workload = IBS_WORKLOADS[name]
    assert _mpi(workload) == pytest.approx(workload.target_mpi_8kb, rel=0.15)


def test_ibs_suite_average():
    values = [_mpi(w, n=150_000) for w in IBS_WORKLOADS.values()]
    assert float(np.mean(values)) == pytest.approx(4.79, rel=0.12)


def test_ultrix_suite_average():
    values = [
        _mpi(get_workload(name, "ultrix"), n=150_000)
        for name in IBS_WORKLOADS
    ]
    assert float(np.mean(values)) == pytest.approx(3.52, rel=0.15)


def test_spec92_suite_average():
    values = [
        _mpi(get_workload(name, os_name), n=150_000)
        for name, os_name in suite_workloads("spec92")
    ]
    assert float(np.mean(values)) == pytest.approx(1.10, rel=0.25)


def test_spec_size_ordering():
    """Gee et al.'s characterization: eqntott small, espresso medium,
    gcc large."""
    eqntott = _mpi(get_workload("eqntott", "spec92"), n=150_000)
    espresso = _mpi(get_workload("espresso", "spec92"), n=150_000)
    gcc = _mpi(get_workload("gcc", "spec92"), n=150_000)
    assert eqntott < espresso < gcc


def test_line_size_sensitivity_matches_paper():
    """Table 6 anchors imply MPI(16B)/MPI(32B) ~ 1.53 and
    MPI(64B)/MPI(32B) ~ 0.69 for the IBS average."""
    ratios_16 = []
    ratios_64 = []
    for name in IBS_WORKLOADS:
        trace = synthesize_trace(IBS_WORKLOADS[name], 150_000, seed=1)
        runs16 = to_line_runs(trace.ifetch_addresses(), 16)
        mpi = {
            ls: measure_mpi(
                runs16, CacheGeometry(8192, ls, 1)
            ).mpi_per_100
            for ls in (16, 32, 64)
        }
        ratios_16.append(mpi[16] / mpi[32])
        ratios_64.append(mpi[64] / mpi[32])
    assert float(np.mean(ratios_16)) == pytest.approx(1.53, rel=0.15)
    assert float(np.mean(ratios_64)) == pytest.approx(0.69, rel=0.15)


def test_figure1_curve_keeps_shape():
    """The Figure 1 miss-vs-size curves must keep their shape under a
    generator bump: monotone non-increasing in cache size, IBS above
    SPEC at every size (the paper's headline gap), and the IBS knee —
    the size where IBS first matches SPEC's 8 KB level — in the same
    32 KB-or-larger band the paper reports (64 KB; at this reduced
    trace length the compulsory floor pushes the crossing to the large
    end, so only the lower edge is pinned)."""
    settings = ExperimentSettings(n_instructions=100_000, seed=1)
    result = figure1.run(settings)
    totals = {
        suite: [curve[size].total for size in figure1.CACHE_SIZES]
        for suite, curve in result.curves.items()
    }
    for suite, curve in totals.items():
        assert all(
            later <= earlier
            for earlier, later in zip(curve, curve[1:])
        ), f"{suite} miss curve is not monotone in cache size"
    spec, ibs = totals["spec92"], totals["ibs-mach3"]
    assert all(i > s for i, s in zip(ibs, spec))
    assert result.equivalent_ibs_size() >= 32 * 1024
