"""Multi-process serving tests: supervisor, fleet identity, drain.

The acceptance bar for ``repro serve --workers N``:

* every worker identifies itself (banner, ``/healthz``, the
  ``X-Repro-Worker`` response header) and the fleet aggregates its
  siblings' health and metrics behind the shared socket;
* a SIGKILLed worker is respawned while the listener keeps accepting;
* a worker that crashes at boot repeatedly trips the crash-loop limit
  and the supervisor exits non-zero with a clear message instead of
  flapping forever;
* SIGTERM with live keep-alive clients and in-flight jobs drains every
  worker within the drain budget — exit 0, no hang, no orphans.

The subprocess tests drive the real ``python -m repro … serve`` CLI
over real sockets; the unit tests cover the registry, the socket
strategy resolution, and the multi-worker Prometheus rendering.
"""

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.service.metrics import ServiceMetrics, render_prometheus_multi
from repro.service.supervisor import (
    SELFTEST_ENV,
    Supervisor,
    WorkerIdentity,
    WorkerRegistry,
    resolve_socket_strategy,
    reuseport_available,
    run_supervisor,
)

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="pre-fork serving is POSIX-only"
)

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

_BANNER = re.compile(
    r"listening on http://(?P<host>[\d.]+):(?P<port>\d+)"
)


class _ServeProcess:
    """One real ``repro serve`` subprocess with captured output."""

    def __init__(self, tmp_path, *extra_args, env_extra=None, workers=2):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.update(env_extra or {})
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro",
                "--cache-dir", str(tmp_path / "cache"),
                "serve", "--port", "0",
                "--workers", str(workers),
                *extra_args,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.lines: list[str] = []
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        self.port: int | None = None

    def _pump(self) -> None:
        for line in self.proc.stdout:
            self.lines.append(line)

    def wait_for(self, pattern: str, timeout: float = 30.0) -> str:
        """First captured line matching ``pattern`` (regex search)."""
        deadline = time.time() + timeout
        compiled = re.compile(pattern)
        seen = 0
        while time.time() < deadline:
            while seen < len(self.lines):
                line = self.lines[seen]
                seen += 1
                if compiled.search(line):
                    return line
            if self.proc.poll() is not None:
                # Let the pump thread flush the tail, then scan once.
                self._reader.join(timeout=5)
                for line in self.lines[seen:]:
                    if compiled.search(line):
                        return line
                break
            time.sleep(0.02)
        raise AssertionError(
            f"no line matching {pattern!r}; output so far:\n"
            + "".join(self.lines)
        )

    def wait_listening(self, timeout: float = 30.0) -> int:
        line = self.wait_for(_BANNER.pattern, timeout)
        self.port = int(_BANNER.search(line).group("port"))
        return self.port

    def healthz(self, timeout: float = 5.0) -> dict:
        url = f"http://127.0.0.1:{self.port}/healthz"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read())

    def wait_healthy_fleet(self, n: int, timeout: float = 30.0) -> dict:
        """Poll ``/healthz`` until ``n`` distinct live workers answer."""
        deadline = time.time() + timeout
        last = None
        while time.time() < deadline:
            try:
                last = self.healthz()
            except (OSError, ValueError):
                time.sleep(0.1)
                continue
            workers = last.get("workers", [])
            alive = {w["worker"] for w in workers if w.get("alive")}
            if len(alive) >= n:
                return last
            time.sleep(0.1)
        raise AssertionError(f"fleet never reached {n} workers: {last}")

    def terminate_and_wait(self, timeout: float = 60.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def cleanup(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


@pytest.fixture
def serve_factory(tmp_path):
    launched: list[_ServeProcess] = []

    def launch(*extra_args, **kwargs) -> _ServeProcess:
        process = _ServeProcess(tmp_path, *extra_args, **kwargs)
        launched.append(process)
        return process

    yield launch
    for process in launched:
        process.cleanup()


def _worker_pids(payload: dict) -> dict[int, int]:
    return {
        w["worker"]: w["pid"]
        for w in payload.get("workers", [])
        if w.get("alive")
    }


class TestFleetIdentity:
    def test_healthz_aggregates_both_workers(self, serve_factory):
        server = serve_factory()
        server.wait_listening()
        payload = server.wait_healthy_fleet(2)
        # The answering worker identifies itself…
        identity = payload["worker"]
        assert identity["count"] == 2
        assert identity["index"] in (0, 1)
        assert identity["pid"] > 0
        # …and summarizes the whole fleet, each entry addressable.
        pids = _worker_pids(payload)
        assert set(pids) == {0, 1}
        assert len(set(pids.values())) == 2
        for entry in payload["workers"]:
            assert entry["admission"]["max_inflight"] >= 1
            assert entry["control_port"] > 0
        assert server.terminate_and_wait() == 0

    def test_worker_header_and_merged_metrics(self, serve_factory):
        server = serve_factory()
        server.wait_listening()
        server.wait_healthy_fleet(2)
        url = f"http://127.0.0.1:{server.port}/healthz"
        with urllib.request.urlopen(url, timeout=5) as response:
            assert response.headers["X-Repro-Worker"] in ("0", "1")
        metrics_url = f"http://127.0.0.1:{server.port}/metrics"
        deadline = time.time() + 20
        text = ""
        while time.time() < deadline:
            with urllib.request.urlopen(metrics_url, timeout=5) as response:
                text = response.read().decode()
            if 'worker="0"' in text and 'worker="1"' in text:
                break
            time.sleep(0.2)
        assert 'worker="0"' in text and 'worker="1"' in text
        # One HELP/TYPE header pair per family, not per worker.
        assert text.count("# TYPE repro_requests_total ") == 1
        assert server.terminate_and_wait() == 0


class TestSupervision:
    def test_killed_worker_respawned_listener_keeps_accepting(
        self, serve_factory
    ):
        server = serve_factory()
        server.wait_listening()
        payload = server.wait_healthy_fleet(2)
        before = _worker_pids(payload)
        victim = before[0]
        os.kill(victim, signal.SIGKILL)
        server.wait_for(rf"pid {victim}\) exited on signal SIGKILL")
        # The listener answers throughout, and the slot comes back with
        # a fresh pid.
        deadline = time.time() + 30
        respawned = None
        while time.time() < deadline:
            after = _worker_pids(server.healthz())
            if after.get(0) not in (None, victim) and len(after) == 2:
                respawned = after
                break
            time.sleep(0.1)
        assert respawned is not None, "worker 0 never respawned"
        assert respawned[1] == before[1]
        assert server.terminate_and_wait() == 0

    def test_crash_loop_trips_limit_and_exits_nonzero(self, serve_factory):
        server = serve_factory(
            "--max-worker-restarts", "3",
            env_extra={SELFTEST_ENV: "crash"},
        )
        server.wait_listening()
        assert server.proc.wait(timeout=60) == 1
        server.wait_for(r"giving up — workers crashed 3 consecutive times")

    def test_supervisor_rejects_invalid_configs(self):
        with pytest.raises(ValueError, match="at least 2 workers"):
            Supervisor(host="127.0.0.1", port=0, workers=1, store_root=None)
        assert run_supervisor(
            host="127.0.0.1", port=0, workers=1, store_root=None
        ) == 2


class TestCoordinatedDrain:
    def test_sigterm_drains_inflight_and_keepalive(self, serve_factory):
        server = serve_factory("--drain-timeout", "10")
        port = server.wait_listening()
        server.wait_healthy_fleet(2)

        async def occupy():
            # An idle keep-alive connection: parked in read_request,
            # only wakes on EOF — exactly the shape that deadlocked
            # shutdown before the PR 7 connection tracking.
            idle_reader, idle_writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            # And one in-flight wait=true evaluate: the response
            # arrives during the drain.
            body = json.dumps(
                {"workload": "gcc", "instructions": 20_000, "wait": True}
            ).encode()
            busy_reader, busy_writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            busy_writer.write(
                (
                    "POST /v1/evaluate HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode() + body
            )
            await busy_writer.drain()
            await asyncio.sleep(0.3)  # let the job enter the scheduler
            server.proc.send_signal(signal.SIGTERM)
            raw = await asyncio.wait_for(busy_reader.read(-1), 60)
            for writer in (idle_writer, busy_writer):
                writer.close()
            return raw

        raw = asyncio.run(occupy())
        # The in-flight request still got its terminal response —
        # finished or reported cancelled, never dropped.
        status = int(raw.split(b" ", 2)[1])
        assert status in (200, 202)
        assert server.proc.wait(timeout=60) == 0
        server.wait_for(r"supervisor drained 2 worker\(s\) \(0 unclean\)")
        # No orphans: every worker pid the fleet reported is gone.
        time.sleep(0.2)
        for line in server.lines:
            match = re.search(r"worker \d+/\d+ \(pid (\d+)\)", line)
            if match:
                with pytest.raises(ProcessLookupError):
                    os.kill(int(match.group(1)), 0)


class TestSocketStrategy:
    def test_auto_resolves_to_platform_best(self):
        resolved = resolve_socket_strategy("auto")
        if reuseport_available():
            assert resolved == "reuseport"
        else:
            assert resolved == "inherit"

    def test_inherit_always_available(self):
        assert resolve_socket_strategy("inherit") == "inherit"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown socket strategy"):
            resolve_socket_strategy("round-robin")

    @pytest.mark.skipif(
        not reuseport_available(), reason="needs SO_REUSEPORT"
    )
    def test_inherit_strategy_serves(self, serve_factory):
        # The portable fallback must work even where reuseport exists.
        server = serve_factory("--socket-strategy", "inherit")
        server.wait_listening()
        server.wait_for(r"strategy=inherit")
        payload = server.wait_healthy_fleet(2)
        assert set(_worker_pids(payload)) == {0, 1}
        assert server.terminate_and_wait() == 0


class TestWorkerRegistry:
    def test_announce_peers_retract(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path / "fleet"))
        me = WorkerIdentity(index=0, count=2, pid=os.getpid())
        registry.announce(me, control_port=1234)
        sibling = WorkerIdentity(index=1, count=2, pid=os.getpid())
        registry.announce(sibling, control_port=5678)
        peers = registry.peers()
        assert [p["index"] for p in peers] == [0, 1]
        assert registry.peers(exclude_index=0)[0]["control_port"] == 5678
        registry.retract(1)
        assert [p["index"] for p in registry.peers()] == [0]

    def test_dead_pid_filtered(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path / "fleet"))
        # Reserve a pid that is certainly dead by the time we read.
        child = os.fork()
        if child == 0:
            os._exit(0)
        os.waitpid(child, 0)
        registry.announce(
            WorkerIdentity(index=0, count=1, pid=child), control_port=1
        )
        assert registry.peers() == []

    def test_torn_announcement_skipped(self, tmp_path):
        root = tmp_path / "fleet"
        registry = WorkerRegistry(str(root))
        registry.announce(
            WorkerIdentity(index=0, count=1, pid=os.getpid()), control_port=1
        )
        (root / "worker-9.json").write_text("{torn")
        assert [p["index"] for p in registry.peers()] == [0]

    def test_missing_directory_is_empty(self, tmp_path):
        assert WorkerRegistry(str(tmp_path / "nope")).peers() == []


class TestMultiWorkerRendering:
    def _snapshot(self, requests: int, depth: float) -> dict:
        metrics = ServiceMetrics()
        metrics.inc("requests_total", {"endpoint": "/healthz"}, requests)
        metrics.set_gauge("queue_depth", depth)
        metrics.observe("request_seconds", 0.002)
        return metrics.to_dict()

    def test_series_gain_worker_labels(self):
        text = render_prometheus_multi(
            {"0": self._snapshot(3, 1.0), "1": self._snapshot(5, 2.0)}
        )
        assert (
            'repro_requests_total{endpoint="/healthz",worker="0"} 3' in text
        )
        assert (
            'repro_requests_total{endpoint="/healthz",worker="1"} 5' in text
        )
        assert 'repro_queue_depth{worker="0"} 1' in text
        assert 'repro_queue_depth{worker="1"} 2' in text
        assert 'worker="0"' in text and 'worker="1"' in text

    def test_help_and_type_once_per_family(self):
        text = render_prometheus_multi(
            {"0": self._snapshot(1, 0.0), "1": self._snapshot(1, 0.0)}
        )
        assert text.count("# TYPE repro_requests_total counter") == 1
        assert text.count("# HELP repro_requests_total ") == 1
        assert text.count("# TYPE repro_request_seconds histogram") == 1

    def test_histograms_reemit_buckets_and_sums(self):
        text = render_prometheus_multi({"7": self._snapshot(1, 0.0)})
        assert (
            'repro_request_seconds_bucket{worker="7",le="+Inf"} 1' in text
        )
        assert 'repro_request_seconds_count{worker="7"} 1' in text

    def test_single_worker_snapshot_helper(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total")
        snapshot = metrics.to_multi_dict("4")
        assert list(snapshot["workers"]) == ["4"]
