"""Unit tests for physically-indexed cache simulation."""

import numpy as np

from repro.caches.base import CacheGeometry
from repro.caches.physical import PhysicallyIndexedCache
from repro.vm.pagemap import IdentityPageMapper, RandomPageMapper


class TestPhysicallyIndexedCache:
    def test_identity_mapping_matches_virtual(self):
        geometry = CacheGeometry(8192, 32, 1)
        physical = PhysicallyIndexedCache(geometry, IdentityPageMapper())
        addresses = (
            np.random.default_rng(0).integers(0, 1 << 20, 2000).astype(np.uint64)
        )
        from repro.caches.vectorized import miss_mask_direct_mapped

        virtual = int(
            miss_mask_direct_mapped(addresses >> np.uint64(5), 256).sum()
        )
        assert physical.count_misses(addresses) == virtual

    def test_sequential_interface(self):
        geometry = CacheGeometry(1024, 32, 1)
        cache = PhysicallyIndexedCache(geometry, RandomPageMapper(seed=1))
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.stats.accesses == 2

    def test_different_mappings_different_conflicts(self):
        # Two pages that alias virtually may or may not alias physically.
        geometry = CacheGeometry(8192, 32, 1)  # 2 pages of 4KB
        rng = np.random.default_rng(3)
        # Alternate between two virtual pages that conflict under
        # identity mapping.
        addresses = np.empty(4000, dtype=np.uint64)
        addresses[0::2] = rng.integers(0, 4096, 2000).astype(np.uint64)
        addresses[1::2] = addresses[0::2] + np.uint64(8192)

        misses = {
            seed: PhysicallyIndexedCache(
                geometry, RandomPageMapper(seed=seed)
            ).count_misses(addresses)
            for seed in range(6)
        }
        assert len(set(misses.values())) > 1  # mapping luck matters
