"""Unit tests for the shared experiment harness."""

import pytest

from repro.core.config import MemorySystemConfig
from repro.experiments.common import (
    ExperimentSettings,
    suite_cpi_instr,
    suite_evaluate,
    suite_runs,
    suite_traces,
)

SETTINGS = ExperimentSettings(n_instructions=20_000, seed=0)


class TestExperimentSettings:
    def test_defaults(self):
        settings = ExperimentSettings()
        assert settings.n_instructions >= 100_000
        assert 0.0 <= settings.warmup_fraction < 1.0

    def test_scaled(self):
        scaled = SETTINGS.scaled(0.5)
        assert scaled.n_instructions == 10_000
        assert scaled.seed == SETTINGS.seed

    def test_scaled_floor(self):
        scaled = SETTINGS.scaled(1e-9)
        assert scaled.n_instructions == 10_000


class TestSuiteHelpers:
    def test_suite_traces_cached(self):
        first = suite_traces("specint92", SETTINGS)
        second = suite_traces("specint92", SETTINGS)
        assert all(a is b for a, b in zip(first, second))

    def test_suite_runs_line_size(self):
        runs = suite_runs("specint92", 64, SETTINGS)
        assert all(r.line_size == 64 for r in runs)

    def test_suite_evaluate_shape(self):
        config = MemorySystemConfig.high_performance()
        results = suite_evaluate("specint92", config, settings=SETTINGS)
        assert len(results) == 6
        assert all(r.cpi_l2 == 0.0 for r in results)

    def test_suite_cpi_instr_means(self):
        config = MemorySystemConfig.high_performance()
        l1, l2 = suite_cpi_instr("specint92", config, settings=SETTINGS)
        assert l1 > 0
        assert l2 == 0.0
