"""Unit tests for the shared experiment harness."""

import pytest

from repro.core.config import MemorySystemConfig
from repro.experiments.common import (
    ExperimentSettings,
    suite_cpi_instr,
    suite_evaluate,
    suite_runs,
    suite_traces,
)

SETTINGS = ExperimentSettings(n_instructions=20_000, seed=0)


class TestExperimentSettings:
    def test_defaults(self):
        settings = ExperimentSettings()
        assert settings.n_instructions >= 100_000
        assert 0.0 <= settings.warmup_fraction < 1.0

    def test_scaled(self):
        scaled = SETTINGS.scaled(0.5)
        assert scaled.n_instructions == 10_000
        assert scaled.seed == SETTINGS.seed

    def test_scaled_floor(self):
        scaled = SETTINGS.scaled(1e-9)
        assert scaled.n_instructions == 10_000


class TestSuiteHelpers:
    def test_suite_traces_cached(self):
        first = suite_traces("specint92", SETTINGS)
        second = suite_traces("specint92", SETTINGS)
        assert all(a is b for a, b in zip(first, second))

    def test_suite_runs_line_size(self):
        runs = suite_runs("specint92", 64, SETTINGS)
        assert all(r.line_size == 64 for r in runs)

    def test_suite_evaluate_shape(self):
        config = MemorySystemConfig.high_performance()
        results = suite_evaluate("specint92", config, settings=SETTINGS)
        assert len(results) == 6
        assert all(r.cpi_l2 == 0.0 for r in results)

    def test_suite_cpi_instr_means(self):
        config = MemorySystemConfig.high_performance()
        l1, l2 = suite_cpi_instr("specint92", config, settings=SETTINGS)
        assert l1 > 0
        assert l2 == 0.0


class TestCanonicalKeys:
    """Content addresses for the serving layer's result store."""

    def test_stable_and_distinct(self):
        from repro.experiments.common import canonical_job_key

        key = canonical_job_key("experiment", "table5", SETTINGS)
        assert key == canonical_job_key("experiment", "table5", SETTINGS)
        assert len(key) == 64
        assert int(key, 16) >= 0  # hex digest
        assert key != canonical_job_key("experiment", "table4", SETTINGS)
        assert key != canonical_job_key("evaluate", "table5", SETTINGS)

    def test_settings_change_key(self):
        from repro.experiments.common import canonical_job_key

        other = ExperimentSettings(n_instructions=40_000, seed=0)
        assert canonical_job_key("experiment", "table5", SETTINGS) != \
            canonical_job_key("experiment", "table5", other)

    def test_extra_knobs_change_key(self):
        from repro.experiments.common import canonical_job_key

        base = canonical_job_key(
            "evaluate", "gcc", SETTINGS, extra={"config": "economy"}
        )
        assert base != canonical_job_key(
            "evaluate", "gcc", SETTINGS, extra={"config": "high-performance"}
        )

    def test_workloads_fingerprint(self):
        from repro.experiments.common import workloads_fingerprint

        fingerprint = workloads_fingerprint()
        assert len(fingerprint) == 64
        assert fingerprint == workloads_fingerprint()  # memoized, stable

    def test_settings_record_roundtrip(self):
        from repro.experiments.common import settings_record

        record = settings_record(SETTINGS)
        assert record == {
            "n_instructions": 20_000,
            "seed": 0,
            "warmup_fraction": SETTINGS.warmup_fraction,
        }
