"""Unit and integration tests for the evaluate() entry point."""

import pytest

from repro.caches.base import CacheGeometry
from repro.core.config import MemorySystemConfig
from repro.core.study import evaluate, evaluate_trace, make_engine
from repro.fetch.bypass import PrefetchBypassEngine
from repro.fetch.engine import DemandFetchEngine
from repro.fetch.prefetch import PrefetchOnMissEngine
from repro.fetch.streambuf import StreamBufferEngine
from repro.fetch.timing import MemoryTiming


class TestMakeEngine:
    def test_mechanism_dispatch(self):
        config = MemorySystemConfig.economy()
        assert isinstance(make_engine(config, "demand"), DemandFetchEngine)
        assert isinstance(
            make_engine(config, "prefetch", n_prefetch=1), PrefetchOnMissEngine
        )
        assert isinstance(
            make_engine(config, "prefetch+bypass"), PrefetchBypassEngine
        )

    def test_stream_buffer_needs_matching_line(self):
        config = MemorySystemConfig(
            "p",
            l1=CacheGeometry(8192, 16, 1),
            memory=MemoryTiming(6, 16),
        )
        assert isinstance(
            make_engine(config, "stream-buffer", n_lines=4), StreamBufferEngine
        )

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            make_engine(MemorySystemConfig.economy(), "telepathy")


class TestEvaluateTrace:
    def test_l1_only(self, medium_trace):
        result = evaluate_trace(medium_trace, MemorySystemConfig.economy())
        assert result.cpi_l2 == 0.0
        assert result.cpi_instr == result.cpi_l1 > 0

    def test_l2_adds_contribution(self, medium_trace):
        config = MemorySystemConfig.economy().with_l2(
            CacheGeometry(65536, 64, 8)
        )
        result = evaluate_trace(medium_trace, config)
        assert result.cpi_l2 > 0
        assert result.l2_mpi > 0
        # The on-chip interface makes L1 misses far cheaper than the
        # baseline's memory round trip.
        baseline = evaluate_trace(medium_trace, MemorySystemConfig.economy())
        assert result.cpi_l1 < baseline.cpi_l1

    def test_workload_label_propagates(self, medium_trace):
        result = evaluate_trace(medium_trace, MemorySystemConfig.economy())
        assert result.workload == medium_trace.label


class TestEvaluate:
    def test_by_name(self):
        result = evaluate(
            "gcc", "mach3", MemorySystemConfig.economy(),
            n_instructions=40_000, seed=3,
        )
        assert result.cpi_instr > 0
        assert "gcc" in result.workload

    def test_deterministic(self):
        a = evaluate(
            "nroff", "mach3", MemorySystemConfig.high_performance(),
            n_instructions=40_000, seed=5,
        )
        b = evaluate(
            "nroff", "mach3", MemorySystemConfig.high_performance(),
            n_instructions=40_000, seed=5,
        )
        assert a.cpi_instr == b.cpi_instr

    def test_mechanism_options_pass_through(self):
        demand = evaluate(
            "verilog", "mach3", MemorySystemConfig.high_performance(),
            n_instructions=40_000,
        )
        prefetch = evaluate(
            "verilog", "mach3", MemorySystemConfig.high_performance(),
            mechanism="prefetch", n_prefetch=1, n_instructions=40_000,
        )
        assert prefetch.cpi_instr != demand.cpi_instr
