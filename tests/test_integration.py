"""End-to-end integration tests: the paper's headline claims.

Each test exercises the full stack — workload synthesis, cache/fetch
simulation, CPI model — and asserts one of the paper's main findings at
reduced scale.
"""

import pytest

from repro import (
    CacheGeometry,
    MemorySystemConfig,
    MemoryTiming,
    evaluate,
    get_trace,
    to_line_runs,
)
from repro.core.metrics import measure_mpi

N = 150_000


class TestHeadlineClaims:
    def test_code_bloat_gap(self):
        """IBS workloads lose several times more CPI to instruction
        fetching than SPEC on the same memory system."""
        config = MemorySystemConfig.economy()
        groff = evaluate("groff", "mach3", config, n_instructions=N)
        eqntott = evaluate("eqntott", "spec92", config, n_instructions=N)
        assert groff.cpi_instr > 5 * eqntott.cpi_instr

    def test_microkernel_overhead(self):
        """The same workload misses more under Mach 3.0 than Ultrix."""
        config = MemorySystemConfig.high_performance()
        mach = evaluate("gs", "mach3", config, n_instructions=N)
        ultrix = evaluate("gs", "ultrix", config, n_instructions=N)
        assert mach.cpi_instr > ultrix.cpi_instr

    def test_ibs_needs_much_larger_cache(self):
        """IBS in a large DM cache ~ SPEC in a small one (Figure 1)."""
        ibs = get_trace("gcc", "mach3", N, seed=0)
        spec = get_trace("espresso", "spec92", N, seed=0)
        ibs_large = measure_mpi(
            to_line_runs(ibs.ifetch_addresses(), 32),
            CacheGeometry(65536, 32, 1),
        ).mpi
        spec_small = measure_mpi(
            to_line_runs(spec.ifetch_addresses(), 32),
            CacheGeometry(8192, 32, 1),
        ).mpi
        assert ibs_large == pytest.approx(spec_small, rel=0.8)

    def test_optimization_ladder(self):
        """Each Section 5 mechanism, applied in paper order, improves
        the economy system's instruction-fetch CPI."""
        l2 = CacheGeometry(65536, 64, 8)
        base = MemorySystemConfig.economy()
        with_l2 = base.with_l2(l2)
        steps = [
            evaluate("sdet", "mach3", base, n_instructions=N).cpi_instr,
            evaluate("sdet", "mach3", with_l2, n_instructions=N).cpi_instr,
            evaluate(
                "sdet", "mach3", with_l2, mechanism="prefetch",
                n_prefetch=1, n_instructions=N,
            ).cpi_instr,
            evaluate(
                "sdet", "mach3", with_l2, mechanism="prefetch+bypass",
                n_prefetch=1, n_instructions=N,
            ).cpi_instr,
        ]
        assert steps == sorted(steps, reverse=True)

    def test_stream_buffer_closes_most_of_the_gap(self):
        """Pipelining + stream buffers give the largest interface win,
        but a floor remains (the paper's conclusion)."""
        config = MemorySystemConfig(
            "pipelined",
            l1=CacheGeometry(8192, 32, 1),
            memory=MemoryTiming(6, 32),
        )
        demand = evaluate("groff", "mach3", config, n_instructions=N)
        buffered = evaluate(
            "groff", "mach3", config, mechanism="stream-buffer",
            n_lines=6, n_instructions=N,
        )
        assert buffered.cpi_instr < 0.6 * demand.cpi_instr
        assert buffered.cpi_instr > 0.05  # the stubborn floor

    def test_multi_issue_motivation(self):
        """The paper's closing point: a 0.18 CPIinstr floor is 'an
        acceptable level for a single-issue machine', but dominates a
        quad-issue machine's 0.25 base CPI."""
        from repro.core.cpi import CpiBreakdown

        floor = 0.18
        quad = CpiBreakdown(instr_l1=floor, base=0.25)
        assert quad.cpi_instr / quad.total > 0.4


class TestCrossValidation:
    def test_trace_determinism_across_cache(self):
        a = get_trace("verilog", "mach3", 50_000, seed=3)
        b = get_trace("verilog", "mach3", 50_000, seed=3)
        assert a is b  # registry cache

    def test_engine_vs_metrics_consistency(self):
        """DemandFetchEngine and measure_mpi must produce the same CPI
        through independent code paths."""
        from repro.core.study import evaluate_trace

        trace = get_trace("nroff", "mach3", 100_000, seed=1)
        config = MemorySystemConfig.high_performance()
        engine_result = evaluate_trace(trace, config)
        measured = measure_mpi(
            to_line_runs(trace.ifetch_addresses(), 32), config.l1
        )
        assert engine_result.cpi_l1 == pytest.approx(
            measured.cpi_contribution(config.l1_miss_penalty)
        )
