"""Randomized differential sweep: vectorized kernels vs reference engines.

The structured grid in ``test_fetch_vectorized.py`` pins the paper's
combinations; this file attacks the kernels with *randomized* streams
and randomly drawn (geometry, mechanism, options, timing, warmup)
points, plus targeted parametrized sweeps over the corners that only
gained kernels late: associative ``prefetch+bypass``, wrap-around
bursts (``n_sets <= n_prefetch``), stream buffers whose line size is
not the transfer width, victim caches, and markov prefetching.  Every
point must match the reference engine bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.core.config import MemorySystemConfig
from repro.core.study import make_engine
from repro.fetch import MemoryTiming, run_vectorized
from repro.trace.rle import to_line_runs

LINE_SIZE = 32

GEOMETRIES = (
    CacheGeometry(1024, LINE_SIZE, 1),   # 32 sets, direct-mapped
    CacheGeometry(2048, LINE_SIZE, 2),
    CacheGeometry(4096, LINE_SIZE, 4),
    CacheGeometry(1024, LINE_SIZE, 0),   # fully associative
    CacheGeometry(128, LINE_SIZE, 1),    # 4 sets — wrap-around territory
)

TIMINGS = (
    MemoryTiming(latency=30, bytes_per_cycle=4),
    MemoryTiming(latency=12, bytes_per_cycle=8),
    MemoryTiming(latency=6, bytes_per_cycle=16),
    MemoryTiming(latency=6, bytes_per_cycle=32),
    MemoryTiming(latency=8, bytes_per_cycle=64),
)


def synthetic_runs(seed: int, n: int = 3000, n_lines: int = 80):
    """A random instruction stream with loop-like locality.

    Mostly sequential fetch with occasional jumps into a bounded code
    footprint — enough structure for hits, evictions, prefetch reuse,
    and buffer wrap-around to all occur.
    """
    rng = np.random.default_rng(seed)
    footprint = n_lines * LINE_SIZE
    addresses = np.empty(n, dtype=np.uint64)
    pc = int(rng.integers(0, n_lines)) * LINE_SIZE
    jumps = rng.random(n) < 0.12
    targets = rng.integers(0, footprint // 4, size=n) * 4
    for i in range(n):
        pc = int(targets[i]) if jumps[i] else (pc + 4) % footprint
        addresses[i] = pc
    return to_line_runs(addresses, LINE_SIZE)


def assert_point_identical(runs, geometry, timing, mechanism,
                           warmup=0.3, **options):
    config = MemorySystemConfig(name="rand", l1=geometry, memory=timing)
    ref = make_engine(config, mechanism, **options).run(runs, warmup)
    vec = run_vectorized(runs, geometry, timing, mechanism, warmup, **options)
    assert (vec.instructions, vec.stall_cycles, vec.misses) == (
        ref.instructions, ref.stall_cycles, ref.misses,
    ), (mechanism, geometry, timing, options, warmup)


def draw_point(rng):
    """One random (geometry, timing, mechanism, options, warmup) point."""
    mechanism = rng.choice(
        ["demand", "prefetch", "tagged", "prefetch+bypass",
         "stream-buffer", "victim", "markov"]
    )
    geometry = GEOMETRIES[rng.integers(len(GEOMETRIES))]
    if mechanism == "victim":
        # The engine only accepts a direct-mapped primary.
        geometry = GEOMETRIES[0] if rng.random() < 0.5 else GEOMETRIES[-1]
    timing = TIMINGS[rng.integers(len(TIMINGS))]
    warmup = float(rng.choice([0.0, 0.25, 0.3, 0.6]))
    options = {}
    if mechanism in ("prefetch", "prefetch+bypass"):
        options["n_prefetch"] = int(rng.integers(0, 6))
    elif mechanism == "stream-buffer":
        options["n_lines"] = int(rng.integers(0, 7))
        if rng.random() < 0.4:
            options["refill_on_use"] = True
        if rng.random() < 0.4:
            options["move_penalty"] = int(rng.integers(0, 3))
    elif mechanism == "victim":
        options["n_victims"] = int(rng.integers(1, 9))
        options["swap_penalty"] = int(rng.integers(0, 3))
    elif mechanism == "markov":
        options["table_size"] = int(rng.choice([16, 64, 1024]))
        options["n_buffers"] = int(rng.integers(1, 5))
        options["hybrid"] = bool(rng.random() < 0.5)
    return geometry, timing, mechanism, options, warmup


@pytest.mark.parametrize("stream_seed", (11, 23, 47))
def test_randomized_points(stream_seed):
    runs = synthetic_runs(stream_seed)
    rng = np.random.default_rng(1000 + stream_seed)
    for _ in range(40):
        geometry, timing, mechanism, options, warmup = draw_point(rng)
        assert_point_identical(
            runs, geometry, timing, mechanism, warmup, **options
        )


class TestFormerlyUncoveredCorners:
    """The combinations that only recently gained closed-form kernels."""

    @pytest.fixture(scope="class")
    def runs(self):
        return synthetic_runs(5)

    @pytest.mark.parametrize("associativity", (2, 4, 0))
    @pytest.mark.parametrize("n_prefetch", (1, 3))
    def test_bypass_on_associative_geometries(
        self, runs, associativity, n_prefetch
    ):
        geometry = CacheGeometry(2048, LINE_SIZE, associativity)
        for timing in (TIMINGS[0], TIMINGS[2]):
            assert_point_identical(
                runs, geometry, timing, "prefetch+bypass",
                n_prefetch=n_prefetch,
            )

    @pytest.mark.parametrize("n_prefetch", (4, 5, 9))
    def test_bypass_wraps_around_tiny_caches(self, runs, n_prefetch):
        # 4 sets <= n_prefetch: the prefetch burst wraps and evicts the
        # lines it just installed — the order-sensitive case.
        geometry = CacheGeometry(128, LINE_SIZE, 1)
        assert_point_identical(
            runs, geometry, TIMINGS[2], "prefetch+bypass",
            n_prefetch=n_prefetch,
        )

    @pytest.mark.parametrize("timing", TIMINGS)
    def test_stream_buffer_any_transfer_width(self, runs, timing):
        # Narrower and wider than the 32 B line both included.
        geometry = CacheGeometry(1024, LINE_SIZE, 1)
        assert_point_identical(runs, geometry, timing, "stream-buffer",
                               n_lines=4)
        assert_point_identical(runs, geometry, timing, "stream-buffer",
                               n_lines=3, refill_on_use=True)

    @pytest.mark.parametrize("n_victims", (1, 4, 8))
    @pytest.mark.parametrize("swap_penalty", (0, 2))
    def test_victim_cache(self, runs, n_victims, swap_penalty):
        geometry = CacheGeometry(1024, LINE_SIZE, 1)
        assert_point_identical(
            runs, geometry, TIMINGS[1], "victim",
            n_victims=n_victims, swap_penalty=swap_penalty,
        )

    @pytest.mark.parametrize("hybrid", (False, True))
    @pytest.mark.parametrize("table_size", (16, 256))
    def test_markov_prefetch(self, runs, hybrid, table_size):
        # The tiny table forces correlation-table evictions.
        for geometry in (GEOMETRIES[0], GEOMETRIES[1]):
            assert_point_identical(
                runs, geometry, TIMINGS[0], "markov",
                table_size=table_size, n_buffers=2, hybrid=hybrid,
            )
