"""Unit tests for the service metrics registry."""

import json
import threading

from repro.service.metrics import Histogram, ServiceMetrics


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1]
        assert histogram.cumulative() == [1, 3, 4]
        assert histogram.count == 4
        assert histogram.total == 0.05 + 0.5 + 0.7 + 5.0

    def test_boundary_is_inclusive(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(1.0)
        assert histogram.counts == [1, 0]


class TestCountersAndGauges:
    def test_counter_labels_are_separate_series(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total", {"endpoint": "/a"})
        metrics.inc("requests_total", {"endpoint": "/a"})
        metrics.inc("requests_total", {"endpoint": "/b"})
        assert metrics.counter_value("requests_total", {"endpoint": "/a"}) == 2
        assert metrics.counter_value("requests_total", {"endpoint": "/b"}) == 1
        assert metrics.counter_value("requests_total", {"endpoint": "/c"}) == 0

    def test_unlabelled_counter(self):
        metrics = ServiceMetrics()
        metrics.inc("hits_total", amount=3)
        assert metrics.counter_value("hits_total") == 3

    def test_gauge_overwrites(self):
        metrics = ServiceMetrics()
        metrics.set_gauge("queue_depth", 4)
        metrics.set_gauge("queue_depth", 2)
        assert metrics.to_dict()["gauges"]["queue_depth"][0]["value"] == 2

    def test_thread_safety(self):
        metrics = ServiceMetrics()

        def spin():
            for _ in range(1000):
                metrics.inc("spins_total")
                metrics.observe("spin_seconds", 0.01)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter_value("spins_total") == 4000


class TestRendering:
    def _populated(self) -> ServiceMetrics:
        metrics = ServiceMetrics()
        metrics.inc("requests_total", {"endpoint": "GET /healthz"})
        metrics.set_gauge("queue_depth", 1)
        metrics.observe("phase_seconds", 0.002, {"phase": "simulate"})
        metrics.observe("phase_seconds", 70.0, {"phase": "simulate"})
        return metrics

    def test_prometheus_text(self):
        text = self._populated().render_prometheus()
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{endpoint="GET /healthz"} 1' in text
        assert '# TYPE repro_queue_depth gauge' in text
        assert 'repro_phase_seconds_bucket{phase="simulate",le="+Inf"} 2' in text
        assert 'repro_phase_seconds_count{phase="simulate"} 2' in text
        assert 'repro_phase_seconds_sum{phase="simulate"}' in text
        # Buckets are cumulative: the 0.005 bucket holds the 0.002 sample.
        assert 'repro_phase_seconds_bucket{phase="simulate",le="0.005"} 1' in text

    def test_json_snapshot(self):
        record = self._populated().to_dict()
        json.dumps(record)
        assert record["counters"]["requests_total"][0]["value"] == 1
        histogram = record["histograms"]["phase_seconds"][0]
        assert histogram["labels"] == {"phase": "simulate"}
        assert histogram["count"] == 2

    def test_help_precedes_type_per_family(self):
        text = self._populated().render_prometheus()
        lines = text.splitlines()
        for index, line in enumerate(lines):
            if line.startswith("# TYPE "):
                family = line.split()[2]
                assert lines[index - 1].startswith(f"# HELP {family} "), (
                    f"{family}: TYPE line not preceded by its HELP line"
                )
        # Known families carry their curated help text, not the fallback.
        assert (
            "# HELP repro_requests_total HTTP requests received, "
            in text
        )

    def test_unknown_family_gets_fallback_help(self):
        metrics = ServiceMetrics()
        metrics.inc("bespoke_total")
        assert (
            "# HELP repro_bespoke_total Service metric bespoke_total."
            in metrics.render_prometheus()
        )

    def test_label_values_escaped(self):
        metrics = ServiceMetrics()
        metrics.inc(
            "requests_total",
            {"endpoint": 'tricky"quote\\slash\nnewline'},
        )
        text = metrics.render_prometheus()
        assert (
            'repro_requests_total{endpoint='
            '"tricky\\"quote\\\\slash\\nnewline"} 1'
        ) in text
        # The physical output line must not be split by the newline.
        assert len(
            [l for l in text.splitlines() if "tricky" in l]
        ) == 1


def _parse_exposition(text: str) -> dict:
    """A strict mini-parser of the Prometheus text format.

    Enforces the grammar a real scraper relies on: every sample line is
    ``name{labels} value``, every sample's family has HELP and TYPE
    announced before it, and label values unescape cleanly.
    """
    families: dict[str, str] = {}
    helped: set[str] = set()
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            _, _, family, kind = line.split()
            assert family in helped, f"{family}: TYPE before HELP"
            assert kind in ("counter", "gauge", "histogram")
            families[family] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        name_and_labels, _, value = line.rpartition(" ")
        name, brace, labels = name_and_labels.partition("{")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
        assert family in families, f"sample {name} has no TYPE"
        if brace:
            assert labels.endswith("}"), f"unterminated labels: {line!r}"
            body = labels[:-1]
            # Label values must be quoted and unescape cleanly.
            for pair in _split_label_pairs(body):
                key, _, quoted = pair.partition("=")
                assert quoted.startswith('"') and quoted.endswith('"')
                quoted[1:-1].encode().decode("unicode_escape")
        samples[name_and_labels] = float(value)
    return samples


def _split_label_pairs(body: str) -> list[str]:
    pairs, depth, current = [], False, []
    for char in body:
        if char == '"' and (not current or current[-1] != "\\"):
            depth = not depth
        if char == "," and not depth:
            pairs.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs


class TestExpositionParses:
    def test_full_rendering_parses(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total", {"endpoint": "GET /metrics"})
        metrics.inc("jobs_executed_total", {"kind": "experiment"})
        metrics.set_gauge("queue_depth", 3)
        metrics.observe("span_seconds", 0.25, {"span": "cell"})
        metrics.observe(
            "phase_seconds", 1.5, {"phase": 'weird"phase\\name'}
        )
        samples = _parse_exposition(metrics.render_prometheus())
        assert samples['repro_requests_total{endpoint="GET /metrics"}'] == 1
        assert samples["repro_queue_depth"] == 3
        assert samples['repro_span_seconds_count{span="cell"}'] == 1
        assert any("weird" in key for key in samples)
