"""Unit tests for the service metrics registry."""

import json
import threading

from repro.service.metrics import Histogram, ServiceMetrics


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1]
        assert histogram.cumulative() == [1, 3, 4]
        assert histogram.count == 4
        assert histogram.total == 0.05 + 0.5 + 0.7 + 5.0

    def test_boundary_is_inclusive(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(1.0)
        assert histogram.counts == [1, 0]


class TestCountersAndGauges:
    def test_counter_labels_are_separate_series(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total", {"endpoint": "/a"})
        metrics.inc("requests_total", {"endpoint": "/a"})
        metrics.inc("requests_total", {"endpoint": "/b"})
        assert metrics.counter_value("requests_total", {"endpoint": "/a"}) == 2
        assert metrics.counter_value("requests_total", {"endpoint": "/b"}) == 1
        assert metrics.counter_value("requests_total", {"endpoint": "/c"}) == 0

    def test_unlabelled_counter(self):
        metrics = ServiceMetrics()
        metrics.inc("hits_total", amount=3)
        assert metrics.counter_value("hits_total") == 3

    def test_gauge_overwrites(self):
        metrics = ServiceMetrics()
        metrics.set_gauge("queue_depth", 4)
        metrics.set_gauge("queue_depth", 2)
        assert metrics.to_dict()["gauges"]["queue_depth"][0]["value"] == 2

    def test_thread_safety(self):
        metrics = ServiceMetrics()

        def spin():
            for _ in range(1000):
                metrics.inc("spins_total")
                metrics.observe("spin_seconds", 0.01)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter_value("spins_total") == 4000


class TestRendering:
    def _populated(self) -> ServiceMetrics:
        metrics = ServiceMetrics()
        metrics.inc("requests_total", {"endpoint": "GET /healthz"})
        metrics.set_gauge("queue_depth", 1)
        metrics.observe("phase_seconds", 0.002, {"phase": "simulate"})
        metrics.observe("phase_seconds", 70.0, {"phase": "simulate"})
        return metrics

    def test_prometheus_text(self):
        text = self._populated().render_prometheus()
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{endpoint="GET /healthz"} 1' in text
        assert '# TYPE repro_queue_depth gauge' in text
        assert 'repro_phase_seconds_bucket{phase="simulate",le="+Inf"} 2' in text
        assert 'repro_phase_seconds_count{phase="simulate"} 2' in text
        assert 'repro_phase_seconds_sum{phase="simulate"}' in text
        # Buckets are cumulative: the 0.005 bucket holds the 0.002 sample.
        assert 'repro_phase_seconds_bucket{phase="simulate",le="0.005"} 1' in text

    def test_json_snapshot(self):
        record = self._populated().to_dict()
        json.dumps(record)
        assert record["counters"]["requests_total"][0]["value"] == 1
        histogram = record["histograms"]["phase_seconds"][0]
        assert histogram["labels"] == {"phase": "simulate"}
        assert histogram["count"] == 2
