"""Unit tests for the DECstation 3100 hardware-monitor model."""

import numpy as np
import pytest

from repro.monitor.hwcounters import DECSTATION_3100, HardwareMonitor
from repro.trace.record import Component, RefKind
from repro.trace.trace import Trace


def _trace(addresses, kinds):
    n = len(addresses)
    return Trace(
        np.asarray(addresses, dtype=np.uint64),
        np.asarray(kinds, dtype=np.uint8),
        np.zeros(n, dtype=np.uint8),
    )


class TestMachineSpec:
    def test_paper_parameters(self):
        spec = DECSTATION_3100
        assert spec.icache.size_bytes == 64 * 1024
        assert spec.icache.line_size == 4
        assert spec.miss_penalty == 6
        assert spec.tlb_entries == 64
        assert spec.page_size == 4096


class TestHardwareMonitor:
    def test_empty_trace(self):
        breakdown = HardwareMonitor().measure(Trace.empty())
        assert breakdown.memory_cpi == 0.0

    def test_icache_component(self):
        # Loop over a tiny set of instructions: no post-warmup I-misses.
        addresses = [0x1000, 0x1004] * 500
        kinds = [RefKind.IFETCH] * 1000
        breakdown = HardwareMonitor().measure(_trace(addresses, kinds))
        assert breakdown.instr_l1 == 0.0

    def test_write_buffer_saturation(self):
        # A store every instruction with 6-cycle drain and 4 slots must
        # stall heavily: steady state ~5 stall cycles per store.
        n = 2000
        addresses = []
        kinds = []
        for i in range(n):
            addresses += [0x1000, 0x8000 + (i % 16) * 4]
            kinds += [RefKind.IFETCH, RefKind.STORE]
        breakdown = HardwareMonitor().measure(_trace(addresses, kinds))
        assert breakdown.write == pytest.approx(5.0, rel=0.1)

    def test_sparse_stores_no_stalls(self):
        # One store every 10 instructions drains without backpressure.
        addresses = []
        kinds = []
        for i in range(300):
            addresses += [0x1000 + (i % 4) * 4] * 9 + [0x8000]
            kinds += [RefKind.IFETCH] * 9 + [RefKind.STORE]
        breakdown = HardwareMonitor().measure(_trace(addresses, kinds))
        assert breakdown.write == 0.0

    def test_ibs_worse_than_spec(self, medium_trace, spec_trace):
        monitor = HardwareMonitor()
        ibs = monitor.measure(medium_trace)
        spec = monitor.measure(spec_trace)
        assert ibs.instr_l1 > spec.instr_l1

    def test_components_all_populated_for_real_trace(self, medium_trace):
        breakdown = HardwareMonitor().measure(medium_trace)
        assert breakdown.instr_l1 > 0
        assert breakdown.data > 0
        assert breakdown.tlb > 0
        assert breakdown.memory_cpi == pytest.approx(
            breakdown.instr_l1 + breakdown.data + breakdown.write
            + breakdown.tlb
        )
