"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "groff" in out
        assert "ibs-mach3" in out
        assert "table4" in out
        assert "ext_prefetch" in out

    def test_experiment_table2(self, capsys):
        assert main(["--instructions", "20000", "experiment", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_evaluate(self, capsys):
        code = main(
            [
                "--instructions", "30000",
                "evaluate", "gcc",
                "--config", "high-performance",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CPIinstr" in out
        assert "gcc@mach3" in out

    def test_evaluate_mechanism(self, capsys):
        code = main(
            [
                "--instructions", "30000",
                "evaluate", "nroff", "--mechanism", "prefetch",
            ]
        )
        assert code == 0
        assert "prefetch" in capsys.readouterr().out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "t.npz"
        code = main(
            [
                "--instructions", "20000",
                "trace", "eqntott", "--os", "spec92",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert out_path.exists()
        from repro.trace.io import load_trace

        trace = load_trace(out_path)
        assert trace.instruction_count == 20000


class TestCliReportExtensions:
    def test_report_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["report", "--extensions"])
        assert args.extensions is True
        args = build_parser().parse_args(["report"])
        assert args.extensions is False


class TestCacheAndJobsCli:
    @pytest.fixture(autouse=True)
    def _isolated_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        from repro.workloads import registry
        from repro.workloads.registry import clear_trace_cache

        saved = registry._disk_cache
        clear_trace_cache()
        yield
        registry._disk_cache = saved
        clear_trace_cache()

    def test_cache_info_unconfigured(self, capsys):
        assert main(["cache", "info"]) == 0
        assert "no cache configured" in capsys.readouterr().out

    def test_cache_clear_unconfigured(self, capsys):
        assert main(["cache", "clear"]) == 2

    def test_experiment_populates_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        code = main(
            [
                "--instructions", "20000",
                "--cache-dir", cache_dir,
                "experiment", "table5",
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["--cache-dir", cache_dir, "cache", "info"]) == 0
        out = capsys.readouterr().out
        assert cache_dir in out
        assert "entries: 22" in out
        assert main(["--cache-dir", cache_dir, "cache", "clear"]) == 0
        assert "cleared 22 entries" in capsys.readouterr().out

    def test_no_disk_cache_flag(self, tmp_path, capsys, monkeypatch):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        code = main(
            [
                "--instructions", "20000", "--no-disk-cache",
                "experiment", "table5",
            ]
        )
        assert code == 0
        assert not cache_dir.exists()

    def test_jobs_bit_identical(self, capsys):
        assert main(["--instructions", "20000", "experiment", "table5"]) == 0
        serial = capsys.readouterr().out
        from repro.workloads.registry import clear_trace_cache

        clear_trace_cache()
        code = main(
            ["--instructions", "20000", "--jobs", "4", "experiment", "table5"]
        )
        assert code == 0
        assert capsys.readouterr().out == serial

    def test_timing_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "timing.json"
        code = main(
            [
                "--instructions", "20000", "--timing-out", str(path),
                "experiment", "table5",
            ]
        )
        assert code == 0
        record = json.loads(path.read_text())
        assert record["label"] == "table5"
        assert record["jobs"] == 1
        assert len(record["cells"]) == 4
        assert "phase_totals" in record
