"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "groff" in out
        assert "ibs-mach3" in out
        assert "table4" in out
        assert "ext_prefetch" in out

    def test_experiment_table2(self, capsys):
        assert main(["--instructions", "20000", "experiment", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_evaluate(self, capsys):
        code = main(
            [
                "--instructions", "30000",
                "evaluate", "gcc",
                "--config", "high-performance",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CPIinstr" in out
        assert "gcc@mach3" in out

    def test_evaluate_mechanism(self, capsys):
        code = main(
            [
                "--instructions", "30000",
                "evaluate", "nroff", "--mechanism", "prefetch",
            ]
        )
        assert code == 0
        assert "prefetch" in capsys.readouterr().out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "t.npz"
        code = main(
            [
                "--instructions", "20000",
                "trace", "eqntott", "--os", "spec92",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert out_path.exists()
        from repro.trace.io import load_trace

        trace = load_trace(out_path)
        assert trace.instruction_count == 20000


class TestVersionFlag:
    def test_version_exits_zero(self, capsys):
        from repro import package_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {package_version()}" in capsys.readouterr().out


class TestServeParser:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--host", "0.0.0.0",
             "--batch-window", "0.05"]
        )
        assert args.command == "serve"
        assert args.port == 9000
        assert args.host == "0.0.0.0"
        assert args.batch_window == 0.05

    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port == 8765
        assert args.host == "127.0.0.1"


class TestCliReportExtensions:
    def test_report_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["report", "--extensions"])
        assert args.extensions is True
        args = build_parser().parse_args(["report"])
        assert args.extensions is False


class TestCacheAndJobsCli:
    @pytest.fixture(autouse=True)
    def _isolated_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        from repro.workloads import registry
        from repro.workloads.registry import clear_trace_cache

        saved = registry._disk_cache
        clear_trace_cache()
        yield
        registry._disk_cache = saved
        clear_trace_cache()

    def test_cache_info_unconfigured(self, capsys):
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "no cache configured" in out
        # The in-process line-order memo is reported even without a
        # disk backend.
        assert "line-order memo" in out
        assert "evictions:" in out

    def test_cache_clear_unconfigured(self, capsys):
        assert main(["cache", "clear"]) == 2

    def test_experiment_populates_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        code = main(
            [
                "--instructions", "20000",
                "--cache-dir", cache_dir,
                "experiment", "table5",
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["--cache-dir", cache_dir, "cache", "info"]) == 0
        out = capsys.readouterr().out
        assert cache_dir in out
        assert "entries: 22" in out
        assert main(["--cache-dir", cache_dir, "cache", "clear"]) == 0
        assert "cleared 22 entries" in capsys.readouterr().out

    def test_cache_info_json(self, tmp_path, capsys):
        import json

        cache_dir = str(tmp_path / "cache")
        assert main(
            [
                "--instructions", "20000",
                "--cache-dir", cache_dir,
                "experiment", "table5",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["--cache-dir", cache_dir, "cache", "info", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["root"] == cache_dir
        assert record["entry_count"] == 22
        assert record["total_bytes"] > 0
        order = record["order_cache"]
        assert set(order) == {
            "entries", "bytes", "evictions", "max_entries", "max_bytes",
        }
        # The experiment that just ran left memoized sort orders behind.
        assert order["entries"] > 0
        entry = record["entries"][0]
        assert {"name", "os", "n_instructions", "seed", "bytes",
                "artifacts", "path"} <= set(entry)

    def test_cache_info_json_unconfigured(self, capsys):
        import json

        assert main(["cache", "info", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["root"] is None

    def test_results_info_and_clear(self, tmp_path, capsys):
        import json

        from repro.service.store import ResultStore

        cache_dir = str(tmp_path / "cache")
        store = ResultStore(str(tmp_path / "cache" / "results"))
        store.put("f" * 64, {"kind": "experiment", "name": "table5"}, "body")

        assert main(["--cache-dir", cache_dir, "results", "info"]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert "table5" in out

        assert main(
            ["--cache-dir", cache_dir, "results", "info", "--json"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["entry_count"] == 1
        assert record["entries"][0]["key"] == "f" * 64

        assert main(["--cache-dir", cache_dir, "results", "clear"]) == 0
        assert "cleared 1 results" in capsys.readouterr().out
        assert main(
            ["--cache-dir", cache_dir, "results", "info", "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["entry_count"] == 0

    def test_results_unconfigured(self, capsys):
        assert main(["results", "info"]) == 0
        assert "no result store configured" in capsys.readouterr().out
        assert main(["results", "clear"]) == 2

    def test_no_disk_cache_flag(self, tmp_path, capsys, monkeypatch):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        code = main(
            [
                "--instructions", "20000", "--no-disk-cache",
                "experiment", "table5",
            ]
        )
        assert code == 0
        assert not cache_dir.exists()

    def test_jobs_bit_identical(self, capsys):
        assert main(["--instructions", "20000", "experiment", "table5"]) == 0
        serial = capsys.readouterr().out
        from repro.workloads.registry import clear_trace_cache

        clear_trace_cache()
        code = main(
            ["--instructions", "20000", "--jobs", "4", "experiment", "table5"]
        )
        assert code == 0
        assert capsys.readouterr().out == serial

    def test_timing_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "timing.json"
        code = main(
            [
                "--instructions", "20000", "--timing-out", str(path),
                "experiment", "table5",
            ]
        )
        assert code == 0
        record = json.loads(path.read_text())
        assert record["label"] == "table5"
        assert record["jobs"] == 1
        assert len(record["cells"]) == 4
        assert "phase_totals" in record
