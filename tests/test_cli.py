"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "groff" in out
        assert "ibs-mach3" in out
        assert "table4" in out
        assert "ext_prefetch" in out

    def test_experiment_table2(self, capsys):
        assert main(["--instructions", "20000", "experiment", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_evaluate(self, capsys):
        code = main(
            [
                "--instructions", "30000",
                "evaluate", "gcc",
                "--config", "high-performance",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CPIinstr" in out
        assert "gcc@mach3" in out

    def test_evaluate_mechanism(self, capsys):
        code = main(
            [
                "--instructions", "30000",
                "evaluate", "nroff", "--mechanism", "prefetch",
            ]
        )
        assert code == 0
        assert "prefetch" in capsys.readouterr().out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "t.npz"
        code = main(
            [
                "--instructions", "20000",
                "trace", "eqntott", "--os", "spec92",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert out_path.exists()
        from repro.trace.io import load_trace

        trace = load_trace(out_path)
        assert trace.instruction_count == 20000


class TestCliReportExtensions:
    def test_report_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["report", "--extensions"])
        assert args.extensions is True
        args = build_parser().parse_args(["report"])
        assert args.extensions is False
