"""Unit tests for argument validators."""

import pytest

from repro._util.validate import (
    check_fraction,
    check_in_range,
    check_positive,
    check_power_of_two,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckPowerOfTwo:
    def test_accepts(self):
        check_power_of_two("n", 1)
        check_power_of_two("n", 4096)

    @pytest.mark.parametrize("bad", [0, 3, -8, 2.0, "8"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="n"):
            check_power_of_two("n", bad)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        check_in_range("r", 0, 0, 1)
        check_in_range("r", 1, 0, 1)

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="r"):
            check_in_range("r", 1.01, 0, 1)


class TestCheckFraction:
    def test_accepts(self):
        check_fraction("f", 0.0)
        check_fraction("f", 0.5)
        check_fraction("f", 1.0)

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="f"):
            check_fraction("f", bad)
