"""Unit tests for the content-addressed result store."""

import json
import os

import pytest

from repro.service.store import ResultStore, result_store_for_cache

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64

PAYLOAD = {"kind": "experiment", "name": "table5", "metrics": {"cpi": 1.5}}


class TestMemoryOnly:
    def test_roundtrip(self):
        store = ResultStore(None)
        assert store.get(KEY_A) is None
        store.put(KEY_A, PAYLOAD, "rendered table")
        assert store.get(KEY_A) == PAYLOAD
        assert store.get_rendering(KEY_A) == "rendered table"
        assert KEY_A in store
        assert len(store) == 1
        assert not store.persistent

    def test_clear(self):
        store = ResultStore(None)
        store.put(KEY_A, PAYLOAD)
        store.put(KEY_B, PAYLOAD)
        assert store.clear() == 2
        assert store.get(KEY_A) is None
        assert store.current_bytes == 0


class TestPersistence:
    def test_survives_restart(self, tmp_path):
        root = tmp_path / "results"
        first = ResultStore(root)
        first.put(KEY_A, PAYLOAD, "rendered")
        second = ResultStore(root)
        assert second.get(KEY_A) == PAYLOAD
        assert second.get_rendering(KEY_A) == "rendered"
        assert second.current_bytes == first.current_bytes > 0

    def test_no_rendering_is_none(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        store.put(KEY_A, PAYLOAD)
        assert ResultStore(tmp_path / "results").get_rendering(KEY_A) is None

    def test_put_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        store.put(KEY_A, PAYLOAD)
        size = store.current_bytes
        store.put(KEY_A, PAYLOAD)
        assert store.current_bytes == size
        assert len(store) == 1

    def test_corrupt_entry_dropped(self, tmp_path):
        root = tmp_path / "results"
        store = ResultStore(root)
        store.put(KEY_A, PAYLOAD)
        (root / KEY_A / "meta.json").write_text("{ not json")
        fresh = ResultStore(root)
        assert fresh.get(KEY_A) is None
        assert KEY_A not in fresh

    def test_foreign_dirs_ignored(self, tmp_path):
        root = tmp_path / "results"
        os.makedirs(root / "random-dir")
        store = ResultStore(root)
        assert len(store) == 0

    def test_clear_removes_directories(self, tmp_path):
        root = tmp_path / "results"
        store = ResultStore(root)
        store.put(KEY_A, PAYLOAD)
        assert store.clear() == 1
        assert not (root / KEY_A).exists()


class TestEviction:
    def _sized_payload(self, n: int) -> dict:
        return {"kind": "experiment", "name": "x", "blob": "y" * n}

    def test_lru_eviction_by_byte_budget(self, tmp_path):
        store = ResultStore(tmp_path / "results", max_bytes=900)
        store.put(KEY_A, self._sized_payload(300))
        store.put(KEY_B, self._sized_payload(300))
        store.put(KEY_C, self._sized_payload(300))
        # A was least recently used, so it pays for C's admission.
        assert KEY_A not in store
        assert KEY_B in store and KEY_C in store
        assert store.current_bytes <= 900

    def test_get_refreshes_recency(self, tmp_path):
        store = ResultStore(tmp_path / "results", max_bytes=900)
        store.put(KEY_A, self._sized_payload(300))
        store.put(KEY_B, self._sized_payload(300))
        assert store.get(KEY_A) is not None  # A becomes most recent
        store.put(KEY_C, self._sized_payload(300))
        assert KEY_B not in store
        assert KEY_A in store and KEY_C in store

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultStore(None, max_bytes=0)


class TestInventory:
    def test_entries_and_describe(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        store.put(KEY_A, PAYLOAD, "rendering")
        infos = store.entries()
        assert len(infos) == 1
        assert infos[0].key == KEY_A
        assert infos[0].kind == "experiment"
        assert infos[0].name == "table5"
        assert infos[0].bytes > 0
        record = store.describe()
        assert record["persistent"] is True
        assert record["entry_count"] == 1
        assert record["entries"][0]["key"] == KEY_A
        json.dumps(record)  # must be JSON-serializable

    def test_env_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE_BYTES", "12345")
        assert ResultStore(tmp_path / "r").max_bytes == 12345
        monkeypatch.setenv("REPRO_RESULT_STORE_BYTES", "junk")
        assert ResultStore(tmp_path / "r").max_bytes > 12345


class TestCacheColocation:
    def test_result_store_for_cache(self, tmp_path):
        from repro.runner.cache import TraceDiskCache

        backend = TraceDiskCache(tmp_path / "cache")
        store = result_store_for_cache(backend)
        assert store.root == os.path.join(backend.root, "results")
        assert result_store_for_cache(None).root is None
