"""Unit tests for tagged sequential prefetch (Smith78)."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.fetch.engine import DemandFetchEngine
from repro.fetch.prefetch import PrefetchOnMissEngine, TaggedPrefetchEngine
from repro.fetch.timing import MemoryTiming
from repro.trace.rle import to_line_runs

GEOMETRY = CacheGeometry(1024, 32, 1)
TIMING = MemoryTiming(latency=6, bytes_per_cycle=16)  # 7 cycles per line


def _runs(addresses):
    return to_line_runs(np.asarray(addresses, dtype=np.uint64), 32)


class TestTaggedPrefetch:
    def test_long_sequential_walk_one_demand_miss(self):
        engine = TaggedPrefetchEngine(GEOMETRY, TIMING)
        addresses = list(range(0, 32 * 8, 4))  # 8 lines, sequential
        result = engine.run(_runs(addresses), warmup_fraction=0.0)
        assert result.misses == 1  # only the cold start
        assert engine.prefetches_issued >= 7

    def test_sequential_walk_cheaper_than_demand(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses()[:60_000], 32)
        geometry = CacheGeometry(8192, 32, 1)
        demand = DemandFetchEngine(geometry, TIMING).run(runs)
        tagged = TaggedPrefetchEngine(geometry, TIMING).run(runs)
        assert tagged.stall_cycles < demand.stall_cycles

    def test_tagged_vs_prefetch_on_miss(self, medium_trace):
        """Smith's classic result: tagged prefetch covers strictly more
        of a sequential stream than prefetch-on-miss at depth 1."""
        runs = to_line_runs(medium_trace.ifetch_addresses()[:60_000], 32)
        geometry = CacheGeometry(8192, 32, 1)
        on_miss = PrefetchOnMissEngine(geometry, TIMING, n_prefetch=1).run(runs)
        tagged = TaggedPrefetchEngine(geometry, TIMING).run(runs)
        assert tagged.misses <= on_miss.misses

    def test_flight_time_charged_when_consumed_early(self):
        engine = TaggedPrefetchEngine(GEOMETRY, TIMING)
        # Touch line 0 (miss, prefetch line 1 arriving 7 cycles later),
        # then jump straight to line 1 after a single instruction.
        result = engine.run(_runs([0, 32]), warmup_fraction=0.0)
        # Miss: 7 stall.  Line 1's fill started at t=7, completes t=14;
        # the fetch of line 1 happens at t=8 -> waits 6.
        assert result.stall_cycles == 7 + 6
        assert result.misses == 1

    def test_prefetch_not_reissued_for_resident_lines(self):
        engine = TaggedPrefetchEngine(GEOMETRY, TIMING)
        engine.run(_runs([0, 0, 0]), warmup_fraction=0.0)
        issued_once = engine.prefetches_issued
        assert issued_once == 1  # line 1, exactly once
