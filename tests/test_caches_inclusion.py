"""Unit tests for multi-level inclusion checking."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.caches.inclusion import (
    check_inclusion,
    inclusion_guaranteed,
)


def _stream(seed=0, n=4000, span=600):
    return np.random.default_rng(seed).integers(0, span, n).astype(np.uint64)


class TestInclusionGuaranteed:
    def test_classic_condition(self):
        l1 = CacheGeometry(1024, 32, 1)
        assert inclusion_guaranteed(l1, CacheGeometry(8192, 32, 8))
        assert inclusion_guaranteed(l1, CacheGeometry(8192, 32, 1))

    def test_smaller_l2_ways_not_guaranteed(self):
        l1 = CacheGeometry(2048, 32, 4)
        l2 = CacheGeometry(8192, 32, 1)
        assert not inclusion_guaranteed(l1, l2)

    def test_different_line_sizes_not_guaranteed(self):
        l1 = CacheGeometry(1024, 32, 1)
        l2 = CacheGeometry(8192, 64, 8)
        assert not inclusion_guaranteed(l1, l2)


class TestCheckInclusion:
    def test_guaranteed_config_holds_empirically(self):
        l1 = CacheGeometry(1024, 32, 1)
        l2 = CacheGeometry(8192, 32, 8)
        report = check_inclusion(_stream(), l1, l2, check_every=32)
        assert report.inclusive
        assert report.max_orphans == 0

    def test_violations_detected_when_l2_thrashes(self):
        # An L1 with more ways than the direct-mapped L2: lines the L1
        # retains get evicted from the L2 by conflicts.
        l1 = CacheGeometry(2048, 32, 8)
        l2 = CacheGeometry(2048, 32, 1)
        report = check_inclusion(_stream(seed=3), l1, l2, check_every=16)
        assert not report.inclusive
        assert report.max_orphans >= 1

    def test_paper_configuration_is_inclusive(self, medium_trace):
        """The paper's 8 KB DM L1 + 64 KB 8-way L2 (equal-line variant)
        satisfies inclusion — which is why measuring L2 misses on the
        full stream (their methodology) is exact."""
        l1 = CacheGeometry(8192, 32, 1)
        l2 = CacheGeometry(65536, 32, 8)
        lines = (medium_trace.ifetch_addresses() >> np.uint64(5))[:40_000]
        report = check_inclusion(lines, l1, l2, check_every=256)
        assert report.inclusive

    def test_rejects_mismatched_lines(self):
        with pytest.raises(ValueError, match="line sizes"):
            check_inclusion(
                _stream(),
                CacheGeometry(1024, 32, 1),
                CacheGeometry(8192, 64, 1),
            )

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            check_inclusion(
                _stream(),
                CacheGeometry(1024, 32, 1),
                CacheGeometry(8192, 32, 1),
                check_every=0,
            )
