"""Unit tests for prefetch + bypass buffers."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.fetch.bypass import PrefetchBypassEngine
from repro.fetch.prefetch import PrefetchOnMissEngine
from repro.fetch.timing import MemoryTiming
from repro.trace.rle import to_line_runs

GEOMETRY = CacheGeometry(1024, 32, 1)
TIMING = MemoryTiming(latency=6, bytes_per_cycle=16)


def _runs(addresses):
    return to_line_runs(np.asarray(addresses, dtype=np.uint64), 32)


class TestBypass:
    def test_miss_stalls_only_until_word(self):
        engine = PrefetchBypassEngine(GEOMETRY, TIMING, n_prefetch=0)
        # Miss at offset 0: word arrives with the first 16-byte beat.
        result = engine.run(_runs([0]), warmup_fraction=0.0)
        assert result.stall_cycles == 6

    def test_miss_at_line_end_waits_for_second_beat(self):
        engine = PrefetchBypassEngine(GEOMETRY, TIMING, n_prefetch=0)
        # Offset 28 is in the second 16-byte beat: 6 + 1 cycles.
        result = engine.run(_runs([28]), warmup_fraction=0.0)
        assert result.stall_cycles == 7

    def test_bypass_never_worse_than_stall_for_line(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses()[:60_000], 32)
        geometry = CacheGeometry(8192, 32, 1)
        plain = PrefetchOnMissEngine(geometry, TIMING, 1).run(runs)
        bypass = PrefetchBypassEngine(geometry, TIMING, 1).run(runs)
        assert bypass.stall_cycles <= plain.stall_cycles

    def test_fetch_outside_buffers_waits_out_refill(self):
        engine = PrefetchBypassEngine(GEOMETRY, TIMING, n_prefetch=1)
        # Miss line 0 (burst holds lines 0-1 until cycle 6+4-1=9);
        # immediately fetch line 16 (outside buffers) -> must wait out
        # the refill, then take its own miss.
        runs = _runs([0, 16 * 32])
        result = engine.run(runs, warmup_fraction=0.0)
        # First miss: stall 6.  Second access at cycle 7: refill busy
        # until cycle 9 (wait 3), then miss costs 6 more.
        assert result.stall_cycles == 6 + 3 + 6

    def test_fetch_from_buffer_during_refill(self):
        engine = PrefetchBypassEngine(GEOMETRY, TIMING, n_prefetch=1)
        # Miss line 0, then sequential fetch into prefetched line 1
        # while it is still arriving: stalls only until its arrival.
        runs = _runs([0, 32])
        result = engine.run(runs, warmup_fraction=0.0)
        # Miss at t=0: stall 6 (word 0), now t=7 after 1 instruction.
        # Line 1 arrives at t=0+6+4-1=9: wait 2.  Total 8.
        assert result.stall_cycles == 8
        assert result.misses == 1

    def test_prefetched_lines_installed_in_cache(self):
        engine = PrefetchBypassEngine(GEOMETRY, TIMING, n_prefetch=2)
        engine.run(_runs([0]), warmup_fraction=0.0)
        assert engine.cache.contains_line(1)
        assert engine.cache.contains_line(2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PrefetchBypassEngine(GEOMETRY, TIMING, n_prefetch=-2)
