"""Unit tests for synthetic code images."""

import pytest

from repro.trace.record import Component
from repro.vm.addrspace import AddressSpaceLayout
from repro.workloads.codeimage import build_code_image


class TestBuildCodeImage:
    def test_procedure_count(self):
        image = build_code_image(Component.USER, 100, 256.0, seed=1)
        assert len(image.procedures) == 100

    def test_procedures_do_not_overlap(self):
        image = build_code_image(Component.USER, 200, 256.0, seed=2)
        ordered = sorted(image.procedures, key=lambda p: p.base)
        for a, b in zip(ordered, ordered[1:]):
            assert a.end <= b.base

    def test_procedures_instruction_aligned(self):
        image = build_code_image(Component.KERNEL, 50, 300.0, seed=3)
        for proc in image.procedures:
            assert proc.base % 4 == 0
            assert proc.size_bytes % 4 == 0
            assert proc.n_instructions == proc.size_bytes // 4

    def test_mean_size_approximates_target(self):
        image = build_code_image(Component.USER, 2000, 512.0, seed=4)
        mean = image.total_bytes / len(image.procedures)
        assert mean == pytest.approx(512.0, rel=0.15)

    def test_modules_page_aligned(self):
        image = build_code_image(Component.USER, 100, 256.0, seed=5)
        for module in image.modules:
            assert module.base % 4096 == 0

    def test_modules_partition_procedures(self):
        image = build_code_image(Component.USER, 100, 256.0, seed=6,
                                 procedures_per_module=24)
        member_count = sum(len(m.procedure_indices) for m in image.modules)
        assert member_count == 100
        assert len(image.modules) == -(-100 // 24)

    def test_component_region_respected(self):
        layout = AddressSpaceLayout()
        for component in Component:
            image = build_code_image(component, 50, 256.0, seed=7)
            base = layout.code_base(component)
            for proc in image.procedures:
                assert proc.base >= base
                assert proc.component == component

    def test_deterministic(self):
        a = build_code_image(Component.USER, 30, 256.0, seed=9)
        b = build_code_image(Component.USER, 30, 256.0, seed=9)
        assert [p.base for p in a.procedures] == [p.base for p in b.procedures]

    def test_span_exceeds_total_due_to_gaps(self):
        image = build_code_image(Component.USER, 100, 256.0, seed=10)
        assert image.span_bytes >= image.total_bytes

    def test_rejects_zero_procedures(self):
        with pytest.raises(ValueError):
            build_code_image(Component.USER, 0, 256.0, seed=0)
