"""Property-based tests on the analytical models (area, sampling,
two-level consistency, branch accounting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.base import CacheGeometry
from repro.caches.sampling import sampled_mpi
from repro.core.area import cache_area_rbe
from repro.core.metrics import measure_mpi
from repro.fetch.branch import BranchTargetBuffer
from repro.trace.rle import to_line_runs

geometry_strategy = st.builds(
    CacheGeometry,
    size_bytes=st.sampled_from([4096, 8192, 32768, 131072]),
    line_size=st.sampled_from([16, 32, 64]),
    associativity=st.sampled_from([1, 2, 4]),
)

addresses_strategy = st.lists(
    st.integers(min_value=0, max_value=1 << 18), min_size=2, max_size=400
).map(lambda xs: np.array(xs, dtype=np.uint64) * 4)


class TestAreaProperties:
    @given(geometry_strategy)
    def test_area_positive_and_superlinear_floor(self, geometry):
        area = cache_area_rbe(geometry)
        # At least the raw data bits' worth of cells.
        assert area > geometry.size_bytes * 8 * 0.6

    @given(
        st.sampled_from([16, 32, 64]),
        st.sampled_from([1, 2, 4]),
    )
    def test_area_monotone_in_size(self, line, ways):
        sizes = [4096, 8192, 16384, 32768]
        areas = [
            cache_area_rbe(CacheGeometry(size, line, ways)) for size in sizes
        ]
        assert areas == sorted(areas)

    @given(st.sampled_from([4096, 8192, 32768]), st.sampled_from([32, 64]))
    def test_area_monotone_in_associativity(self, size, line):
        areas = [
            cache_area_rbe(CacheGeometry(size, line, ways))
            for ways in (1, 2, 4)
        ]
        assert areas == sorted(areas)


class TestSamplingProperties:
    @given(addresses_strategy)
    @settings(max_examples=25, deadline=None)
    def test_full_single_window_equals_exact(self, addresses):
        geometry = CacheGeometry(4096, 32, 1)
        runs = to_line_runs(addresses, 32)
        total = int(runs.counts.sum())
        estimate = sampled_mpi(
            runs, geometry,
            sample_fraction=1.0,
            window_instructions=total,
            warm_fraction=0.0,
        )
        exact = measure_mpi(runs, geometry, warmup_fraction=0.0)
        assert estimate.mpi == pytest.approx(exact.mpi)
        assert estimate.windows == 1

    @given(addresses_strategy)
    @settings(max_examples=25, deadline=None)
    def test_estimate_bounded(self, addresses):
        geometry = CacheGeometry(4096, 32, 1)
        runs = to_line_runs(addresses, 32)
        estimate = sampled_mpi(
            runs, geometry, sample_fraction=0.5, window_instructions=50
        )
        assert 0.0 <= estimate.mpi <= 1.0
        assert estimate.instructions_measured <= estimate.instructions_simulated


class TestBranchProperties:
    @given(addresses_strategy, st.sampled_from([4, 64, 1024]))
    @settings(max_examples=25, deadline=None)
    def test_rates_bounded(self, addresses, entries):
        result = BranchTargetBuffer(entries).simulate(addresses)
        assert 0.0 <= result.taken_rate <= 1.0
        assert 0.0 <= result.misprediction_rate <= 1.0
        assert result.mispredictions <= result.transitions
        assert result.taken <= result.transitions

    @given(addresses_strategy)
    @settings(max_examples=25, deadline=None)
    def test_mispredictions_at_most_taken_plus_drops(self, addresses):
        # Every misprediction is either a taken transfer that wasn't
        # predicted (bounded by taken) or a predicted-taken that fell
        # through (bounded by transitions - taken).
        result = BranchTargetBuffer(64).simulate(addresses)
        assert result.mispredictions <= result.transitions
