"""Property-based tests on fetch engines and VM mappers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.base import CacheGeometry
from repro.fetch.bypass import PrefetchBypassEngine
from repro.fetch.engine import DemandFetchEngine
from repro.fetch.markov import MarkovPrefetchEngine
from repro.fetch.prefetch import PrefetchOnMissEngine
from repro.fetch.streambuf import StreamBufferEngine
from repro.fetch.timing import MemoryTiming
from repro.fetch.victim import VictimCacheEngine
from repro.trace.rle import to_line_runs
from repro.vm.pagemap import BinHoppingMapper, PageColoringMapper, RandomPageMapper

GEOMETRY = CacheGeometry(1024, 32, 1)

addresses_strategy = st.lists(
    st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=250
).map(lambda xs: np.array(xs, dtype=np.uint64) * 4)


def _engines(timing):
    yield DemandFetchEngine(GEOMETRY, timing)
    yield PrefetchOnMissEngine(GEOMETRY, timing, n_prefetch=2)
    yield PrefetchBypassEngine(GEOMETRY, timing, n_prefetch=1)
    yield VictimCacheEngine(GEOMETRY, timing, n_victims=2)
    yield MarkovPrefetchEngine(GEOMETRY, timing, n_buffers=2, hybrid=True)


class TestEngineInvariants:
    @given(addresses_strategy)
    @settings(max_examples=30, deadline=None)
    def test_stalls_and_misses_non_negative_and_bounded(self, addresses):
        timing = MemoryTiming(latency=6, bytes_per_cycle=16)
        runs = to_line_runs(addresses, 32)
        for engine in _engines(timing):
            result = engine.run(runs, warmup_fraction=0.0)
            assert result.stall_cycles >= 0
            assert 0 <= result.misses <= len(runs)
            assert result.instructions == len(addresses)

    @given(addresses_strategy)
    @settings(max_examples=20, deadline=None)
    def test_demand_cpi_monotone_in_latency(self, addresses):
        runs = to_line_runs(addresses, 32)
        fast = DemandFetchEngine(GEOMETRY, MemoryTiming(3, 16)).run(
            runs, warmup_fraction=0.0
        )
        slow = DemandFetchEngine(GEOMETRY, MemoryTiming(20, 16)).run(
            runs, warmup_fraction=0.0
        )
        assert slow.stall_cycles >= fast.stall_cycles
        assert slow.misses == fast.misses  # timing never changes misses

    @given(addresses_strategy)
    @settings(max_examples=20, deadline=None)
    def test_victim_never_misses_more_than_demand(self, addresses):
        timing = MemoryTiming(6, 16)
        runs = to_line_runs(addresses, 32)
        demand = DemandFetchEngine(GEOMETRY, timing).run(runs, 0.0)
        victim = VictimCacheEngine(GEOMETRY, timing, n_victims=4).run(runs, 0.0)
        assert victim.misses <= demand.misses

    @given(addresses_strategy, st.sampled_from([0, 1, 4]))
    @settings(max_examples=20, deadline=None)
    def test_stream_buffer_stalls_bounded_by_demand(self, addresses, n_lines):
        timing = MemoryTiming(6, 32)
        geometry = CacheGeometry(1024, 32, 1)
        runs = to_line_runs(addresses, 32)
        demand = DemandFetchEngine(geometry, timing).run(runs, 0.0)
        buffered = StreamBufferEngine(geometry, timing, n_lines=n_lines).run(
            runs, 0.0
        )
        # Demand pays fill_penalty(32) = 6 per miss; the stream-buffer
        # model pays latency (6) per miss plus flight-wait on hits,
        # which never exceeds the full latency per run.
        assert buffered.stall_cycles <= demand.stall_cycles + len(runs)


class TestMapperProperties:
    @given(st.lists(st.integers(0, 5000), min_size=1, max_size=300),
           st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_random_mapper_is_injective(self, pages, seed):
        mapper = RandomPageMapper(n_frames=1 << 14, seed=seed)
        frames = [mapper.frame_of(p) for p in pages]
        # Same page -> same frame; distinct pages -> distinct frames.
        mapping = dict(zip(pages, frames))
        assert all(mapper.frame_of(p) == f for p, f in mapping.items())
        distinct_pages = set(pages)
        assert len({mapping[p] for p in distinct_pages}) == len(distinct_pages)

    @given(st.lists(st.integers(0, 5000), min_size=1, max_size=300),
           st.sampled_from([2, 4, 16]))
    @settings(max_examples=30, deadline=None)
    def test_coloring_and_binhop_injective(self, pages, n_colors):
        for mapper in (PageColoringMapper(n_colors), BinHoppingMapper(n_colors)):
            frames = {p: mapper.frame_of(p) for p in pages}
            assert len(set(frames.values())) == len(frames)

    @given(st.lists(st.integers(0, 1 << 24), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_translation_preserves_page_offsets(self, raw):
        addresses = np.array(raw, dtype=np.uint64)
        mapper = RandomPageMapper(seed=1)
        physical = mapper.translate_many(addresses)
        assert np.array_equal(
            physical & np.uint64(4095), addresses & np.uint64(4095)
        )
