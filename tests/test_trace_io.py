"""Unit tests for trace persistence."""

import json

import numpy as np
import pytest

from repro.trace.io import (
    load_trace,
    load_trace_columns,
    save_trace,
    save_trace_columns,
)
from repro.trace.trace import Trace


class TestRoundTrip:
    def test_save_load_identical(self, handmade_trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(handmade_trace, path)
        loaded = load_trace(path)
        assert loaded.label == handmade_trace.label
        assert np.array_equal(loaded.addresses, handmade_trace.addresses)
        assert np.array_equal(loaded.kinds, handmade_trace.kinds)
        assert np.array_equal(loaded.components, handmade_trace.components)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_trace(Trace.empty("e"), path)
        loaded = load_trace(path)
        assert len(loaded) == 0
        assert loaded.label == "e"

    def test_unicode_label(self, handmade_trace, tmp_path):
        path = tmp_path / "u.npz"
        save_trace(handmade_trace.relabel("groff@mach3 µkernel"), path)
        assert load_trace(path).label == "groff@mach3 µkernel"


class TestErrors:
    def test_not_a_trace_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_synthesized_round_trip(self, small_trace, tmp_path):
        path = tmp_path / "synth.npz"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert loaded.instruction_count == small_trace.instruction_count


class TestColumnDirectory:
    """The runner cache's mmap-able per-column layout (satellite tests)."""

    def test_roundtrip_preserves_dtypes(self, handmade_trace, tmp_path):
        save_trace_columns(handmade_trace, tmp_path / "entry")
        loaded = load_trace_columns(tmp_path / "entry", mmap=False)
        assert loaded.label == handmade_trace.label
        for name in ("addresses", "kinds", "components"):
            original = getattr(handmade_trace, name)
            column = getattr(loaded, name)
            assert column.dtype == original.dtype
            assert np.array_equal(column, original)

    @staticmethod
    def _file_backed(column) -> bool:
        """Whether a column (or a base it views) is an np.memmap."""
        base = column
        while base is not None:
            if isinstance(base, np.memmap):
                return True
            base = getattr(base, "base", None)
        return False

    def test_mmap_mode_memory_maps(self, handmade_trace, tmp_path):
        save_trace_columns(handmade_trace, tmp_path / "entry")
        loaded = load_trace_columns(tmp_path / "entry", mmap=True)
        assert self._file_backed(loaded.addresses)
        assert np.array_equal(loaded.addresses, handmade_trace.addresses)
        eager = load_trace_columns(tmp_path / "entry", mmap=False)
        assert not self._file_backed(eager.addresses)

    def test_synthesized_roundtrip(self, small_trace, tmp_path):
        save_trace_columns(small_trace, tmp_path / "entry")
        loaded = load_trace_columns(tmp_path / "entry")
        assert loaded.instruction_count == small_trace.instruction_count

    @pytest.mark.parametrize("mmap", [True, False])
    def test_truncated_column_raises(self, handmade_trace, tmp_path, mmap):
        save_trace_columns(handmade_trace, tmp_path / "entry")
        path = tmp_path / "entry" / "addresses.npy"
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 8)
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_trace_columns(tmp_path / "entry", mmap=mmap)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="not a trace-column"):
            load_trace_columns(tmp_path / "nope")

    def test_missing_column_raises(self, handmade_trace, tmp_path):
        save_trace_columns(handmade_trace, tmp_path / "entry")
        (tmp_path / "entry" / "kinds.npy").unlink()
        with pytest.raises(ValueError, match="not a trace-column"):
            load_trace_columns(tmp_path / "entry")

    def test_version_mismatch_raises(self, handmade_trace, tmp_path):
        save_trace_columns(handmade_trace, tmp_path / "entry")
        meta_path = tmp_path / "entry" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="unsupported trace format"):
            load_trace_columns(tmp_path / "entry")


class TestDinero:
    def test_round_trip(self, handmade_trace, tmp_path):
        from repro.trace.io import load_dinero, save_dinero

        path = tmp_path / "t.din"
        save_dinero(handmade_trace, path)
        loaded = load_dinero(path)
        assert np.array_equal(loaded.addresses, handmade_trace.addresses)
        assert np.array_equal(loaded.kinds, handmade_trace.kinds)

    def test_format_is_classic_din(self, handmade_trace, tmp_path):
        from repro.trace.io import save_dinero

        path = tmp_path / "t.din"
        save_dinero(handmade_trace, path)
        first = path.read_text().splitlines()[0].split()
        assert first[0] == "2"  # ifetch
        assert int(first[1], 16) == 0x1000

    def test_malformed_line_rejected(self, tmp_path):
        from repro.trace.io import load_dinero

        path = tmp_path / "bad.din"
        path.write_text("2 1000\nnot a line\n")
        with pytest.raises(ValueError, match="expected"):
            load_dinero(path)

    def test_unknown_type_rejected(self, tmp_path):
        from repro.trace.io import load_dinero

        path = tmp_path / "bad.din"
        path.write_text("7 1000\n")
        with pytest.raises(ValueError, match="unknown access type"):
            load_dinero(path)

    def test_blank_lines_ignored(self, tmp_path):
        from repro.trace.io import load_dinero

        path = tmp_path / "t.din"
        path.write_text("2 1000\n\n0 2000\n")
        assert len(load_dinero(path)) == 2
