"""Unit tests for the Monster logic-analyzer capture model."""

import numpy as np

from repro.caches.base import CacheGeometry
from repro.monitor.logic_analyzer import MonsterCapture
from repro.trace.record import Component, RefKind


class TestCapture:
    def test_small_trace_untouched(self, small_trace):
        capture = MonsterCapture(buffer_references=10**9)
        report = capture.capture(small_trace)
        assert report.n_unloads == 0
        assert report.trace is small_trace

    def test_unload_count(self, small_trace):
        buffer = 10_000
        capture = MonsterCapture(buffer_references=buffer)
        report = capture.capture(small_trace)
        assert report.n_unloads == (len(small_trace) - 1) // buffer

    def test_injected_references_are_kernel_ifetches(self, small_trace):
        capture = MonsterCapture(buffer_references=10_000)
        report = capture.capture(small_trace)
        captured = report.trace
        assert len(captured) == len(small_trace) + report.injected_references
        extra = report.injected_references
        assert extra > 0
        # Injected handler bursts are kernel instruction fetches.
        injected_mask = np.ones(len(captured), dtype=bool)
        # Reconstruct: chunks of `buffer` original refs followed by bursts.
        # Simply check totals instead of positions:
        original_kernel_ifetch = int(
            (
                (small_trace.kinds == RefKind.IFETCH)
                & (small_trace.components == Component.KERNEL)
            ).sum()
        )
        captured_kernel_ifetch = int(
            (
                (captured.kinds == RefKind.IFETCH)
                & (captured.components == Component.KERNEL)
            ).sum()
        )
        assert captured_kernel_ifetch == original_kernel_ifetch + extra

    def test_original_references_preserved_in_order(self, small_trace):
        capture = MonsterCapture(buffer_references=7_000)
        captured = capture.capture(small_trace).trace
        # Deleting the injected handler addresses recovers the original.
        handler_base = capture._handler_addresses[0]
        handler_top = capture._handler_addresses[-1]
        keep = ~(
            (captured.addresses >= handler_base)
            & (captured.addresses <= handler_top)
            & (captured.kinds == RefKind.IFETCH)
            & (captured.components == Component.KERNEL)
        )
        recovered = captured.addresses[keep]
        # All original refs must appear (the workload itself never
        # touches the dedicated handler range).
        assert len(recovered) == len(small_trace)
        assert np.array_equal(recovered, small_trace.addresses)


class TestCaptureError:
    def test_error_is_small(self, medium_trace):
        """Reproduces the paper's validation: capture distortion changes
        the measured MPI by well under 5%."""
        capture = MonsterCapture(buffer_references=32_768)
        geometry = CacheGeometry(8192, 32, 1)
        error = capture.capture_error(medium_trace, geometry)
        assert error < 0.05

    def test_tiny_buffer_distorts_more(self, medium_trace):
        geometry = CacheGeometry(8192, 32, 1)
        fine = MonsterCapture(buffer_references=200_000).capture_error(
            medium_trace, geometry
        )
        coarse = MonsterCapture(buffer_references=2_000).capture_error(
            medium_trace, geometry
        )
        assert coarse >= fine
