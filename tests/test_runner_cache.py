"""Unit tests for the persistent on-disk trace/artifact cache."""

import dataclasses

import numpy as np
import pytest

from repro.runner.cache import (
    TraceDiskCache,
    cache_from_environment,
    params_fingerprint,
)
from repro.trace.rle import to_line_runs
from repro.workloads import registry
from repro.workloads.generator import synthesize_trace
from repro.workloads.registry import (
    clear_trace_cache,
    get_line_runs,
    get_trace,
    get_workload,
    set_trace_cache_backend,
)

N = 20_000
SEED = 11


def _is_file_backed(column: np.ndarray) -> bool:
    """Whether a column's storage is a memory-mapped file.

    ``Trace.__post_init__`` normalizes columns with ``ascontiguousarray``,
    which turns a loaded ``np.memmap`` into a plain ndarray *view* of it
    — still file-backed, so walk the base chain.
    """
    base = column
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = getattr(base, "base", None)
    return False


@pytest.fixture(autouse=True)
def _isolated_backend():
    """Each test starts with no disk backend and a cold in-memory cache."""
    saved = registry._disk_cache
    set_trace_cache_backend(None)
    clear_trace_cache()
    yield
    registry._disk_cache = saved
    clear_trace_cache()


@pytest.fixture
def params():
    return get_workload("gcc", "mach3")


@pytest.fixture
def trace(params):
    return synthesize_trace(params, N, seed=SEED)


class TestFingerprint:
    def test_stable(self, params):
        assert params_fingerprint(params) == params_fingerprint(params)

    def test_sensitive_to_params(self, params):
        tweaked = dataclasses.replace(
            params, burst_visits=params.burst_visits + 1.0
        )
        assert params_fingerprint(params) != params_fingerprint(tweaked)

    def test_sensitive_to_generator_version(self, params):
        assert params_fingerprint(params, generator_version=1) != (
            params_fingerprint(params, generator_version=2)
        )

    def test_distinct_workloads(self):
        a = params_fingerprint(get_workload("gcc", "mach3"))
        b = params_fingerprint(get_workload("groff", "mach3"))
        assert a != b


class TestRoundTrip:
    def test_miss_on_empty_cache(self, tmp_path, params):
        cache = TraceDiskCache(tmp_path)
        assert cache.load(params, N, SEED) is None

    def test_trace_round_trip(self, tmp_path, params, trace):
        cache = TraceDiskCache(tmp_path)
        cache.store(trace, params, N, SEED)
        loaded = cache.load(params, N, SEED)
        assert loaded is not None
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert np.array_equal(loaded.kinds, trace.kinds)
        assert np.array_equal(loaded.components, trace.components)

    def test_loaded_trace_is_memory_mapped(self, tmp_path, params, trace):
        cache = TraceDiskCache(tmp_path)
        cache.store(trace, params, N, SEED)
        loaded = cache.load(params, N, SEED)
        assert _is_file_backed(loaded.addresses)
        assert _is_file_backed(loaded.kinds)

    def test_store_idempotent(self, tmp_path, params, trace):
        cache = TraceDiskCache(tmp_path)
        first = cache.store(trace, params, N, SEED)
        second = cache.store(trace, params, N, SEED)
        assert first == second
        assert len(cache.entries()) == 1

    def test_line_runs_round_trip(self, tmp_path, params, trace):
        cache = TraceDiskCache(tmp_path)
        cache.store(trace, params, N, SEED)
        runs = to_line_runs(trace.ifetch_addresses(), 32)
        cache.store_line_runs(runs, params, N, SEED)
        loaded = cache.load_line_runs(params, N, SEED, 32)
        assert loaded is not None
        assert loaded.line_size == 32
        assert np.array_equal(loaded.lines, runs.lines)
        assert np.array_equal(loaded.counts, runs.counts)
        assert np.array_equal(loaded.first_offsets, runs.first_offsets)

    def test_line_runs_require_trace_entry(self, tmp_path, params, trace):
        cache = TraceDiskCache(tmp_path)
        runs = to_line_runs(trace.ifetch_addresses(), 32)
        assert cache.store_line_runs(runs, params, N, SEED) is None
        assert cache.load_line_runs(params, N, SEED, 32) is None


class TestInvalidation:
    def test_params_change_misses(self, tmp_path, params, trace):
        cache = TraceDiskCache(tmp_path)
        cache.store(trace, params, N, SEED)
        tweaked = dataclasses.replace(
            params, burst_visits=params.burst_visits + 1.0
        )
        assert cache.load(tweaked, N, SEED) is None

    def test_generator_version_bump_misses(
        self, tmp_path, params, trace, monkeypatch
    ):
        cache = TraceDiskCache(tmp_path)
        cache.store(trace, params, N, SEED)
        import repro.workloads.generator as generator

        monkeypatch.setattr(
            generator, "GENERATOR_VERSION", generator.GENERATOR_VERSION + 1
        )
        assert cache.load(params, N, SEED) is None

    def test_foreign_directory_is_a_miss(self, tmp_path, params):
        cache = TraceDiskCache(tmp_path)
        entry = cache.entry_dir(params, N, SEED)
        import os

        os.makedirs(entry)
        with open(os.path.join(entry, "garbage.txt"), "w") as handle:
            handle.write("not a trace")
        assert cache.load(params, N, SEED) is None


class TestInventory:
    def test_entries_and_clear(self, tmp_path, params, trace):
        cache = TraceDiskCache(tmp_path)
        assert cache.entries() == []
        assert cache.total_bytes() == 0
        cache.store(trace, params, N, SEED)
        infos = cache.entries()
        assert len(infos) == 1
        assert infos[0].name == "gcc"
        assert infos[0].os_name == "mach3"
        assert infos[0].n_instructions == N
        assert infos[0].bytes > 0
        assert cache.total_bytes() == infos[0].bytes
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_artifact_count(self, tmp_path, params, trace):
        cache = TraceDiskCache(tmp_path)
        cache.store(trace, params, N, SEED)
        runs = to_line_runs(trace.ifetch_addresses(), 32)
        cache.store_line_runs(runs, params, N, SEED)
        assert cache.entries()[0].artifacts == 1

    def test_entries_report_generator_version(self, tmp_path, params, trace):
        from repro.workloads.generator import GENERATOR_VERSION

        cache = TraceDiskCache(tmp_path)
        cache.store(trace, params, N, SEED)
        info = cache.entries()[0]
        assert info.generator_version == GENERATOR_VERSION
        assert info.to_dict()["generator_version"] == GENERATOR_VERSION

    def test_pre_versioned_entries_report_v1(self, tmp_path, params, trace):
        """Entries written before ``entry.json`` carried the field are
        all from the v1 synthesizer and must be reported as such."""
        import json as jsonlib
        import os

        cache = TraceDiskCache(tmp_path)
        entry = cache.store(trace, params, N, SEED)
        meta_path = os.path.join(entry, "entry.json")
        with open(meta_path) as handle:
            meta = jsonlib.load(handle)
        meta.pop("generator_version")
        with open(meta_path, "w") as handle:
            jsonlib.dump(meta, handle)
        assert cache.entries()[0].generator_version == 1


class TestEnvironment:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cache_from_environment() is None

    def test_env_var_selects_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = cache_from_environment()
        assert cache is not None
        assert cache.root == str(tmp_path)


class TestRegistryIntegration:
    def test_get_trace_populates_disk(self, tmp_path):
        set_trace_cache_backend(TraceDiskCache(tmp_path))
        trace = get_trace("gcc", "mach3", N, seed=SEED)
        backend = registry.trace_cache_backend()
        assert len(backend.entries()) == 1
        # A cold in-memory cache now loads from disk: equal data, and
        # memory-mapped rather than freshly synthesized.
        clear_trace_cache()
        reloaded = get_trace("gcc", "mach3", N, seed=SEED)
        assert reloaded is not trace
        assert _is_file_backed(reloaded.addresses)
        assert np.array_equal(reloaded.addresses, trace.addresses)

    def test_get_line_runs_populates_disk(self, tmp_path):
        set_trace_cache_backend(TraceDiskCache(tmp_path))
        runs = get_line_runs("gcc", "mach3", N, seed=SEED, line_size=32)
        assert registry.trace_cache_backend().entries()[0].artifacts == 1
        # Warm process: memoized on the Trace, same object back.
        assert get_line_runs("gcc", "mach3", N, seed=SEED, line_size=32) is runs
        # Cold process (simulated): the artifact loads from disk.
        clear_trace_cache()
        reloaded = get_line_runs("gcc", "mach3", N, seed=SEED, line_size=32)
        assert np.array_equal(reloaded.lines, runs.lines)
        assert np.array_equal(reloaded.counts, runs.counts)

    def test_disabled_backend_still_works(self):
        trace = get_trace("gcc", "mach3", N, seed=SEED)
        assert get_trace("gcc", "mach3", N, seed=SEED) is trace

    def test_cache_observer_sees_each_outcome(self, tmp_path):
        """One synthesis, one memory hit, one disk hit — in that order."""
        events = []
        registry.add_trace_cache_observer(events.append)
        try:
            set_trace_cache_backend(TraceDiskCache(tmp_path))
            clear_trace_cache()
            get_trace("gcc", "mach3", N, seed=SEED)
            get_trace("gcc", "mach3", N, seed=SEED)
            clear_trace_cache()
            get_trace("gcc", "mach3", N, seed=SEED)
        finally:
            registry.remove_trace_cache_observer(events.append)
        assert events == [
            registry.TRACE_CACHE_SYNTHESIZED,
            registry.TRACE_CACHE_MEMORY_HIT,
            registry.TRACE_CACHE_DISK_HIT,
        ]
