"""Unit tests for sequential prefetch-on-miss."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.fetch.engine import DemandFetchEngine
from repro.fetch.prefetch import PrefetchOnMissEngine
from repro.fetch.timing import MemoryTiming
from repro.trace.rle import to_line_runs

GEOMETRY = CacheGeometry(1024, 32, 1)
TIMING = MemoryTiming(latency=6, bytes_per_cycle=16)


def _runs(addresses):
    return to_line_runs(np.asarray(addresses, dtype=np.uint64), 32)


class TestPrefetchOnMiss:
    def test_zero_prefetch_equals_demand(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses()[:50_000], 32)
        demand = DemandFetchEngine(GEOMETRY, TIMING).run(runs)
        prefetch = PrefetchOnMissEngine(GEOMETRY, TIMING, n_prefetch=0).run(runs)
        assert demand.stall_cycles == prefetch.stall_cycles
        assert demand.misses == prefetch.misses

    def test_prefetch_hides_sequential_misses(self):
        engine = PrefetchOnMissEngine(GEOMETRY, TIMING, n_prefetch=1)
        # Sequential walk over 4 lines: misses on lines 0 and 2 only.
        result = engine.run(_runs([0, 32, 64, 96]), warmup_fraction=0.0)
        assert result.misses == 2

    def test_penalty_includes_prefetched_lines(self):
        engine = PrefetchOnMissEngine(GEOMETRY, TIMING, n_prefetch=3)
        result = engine.run(_runs([0]), warmup_fraction=0.0)
        # 4 lines x 32 B = 128 B at 16 B/cyc: 6 + 8 - 1 = 13 cycles.
        assert result.stall_cycles == 13

    def test_prefetch_can_pollute(self):
        # A prefetched line may evict a useful resident line.
        tiny = CacheGeometry(64, 32, 1)  # 2 sets
        engine = PrefetchOnMissEngine(tiny, TIMING, n_prefetch=1)
        # Access line 0 (prefetch line 1 -> set 1), then line 3 (set 1,
        # evicts line 1... ), then the pathological pattern:
        result = engine.run(_runs([0, 96, 32, 96]), warmup_fraction=0.0)
        assert result.misses >= 2

    def test_rejects_negative_prefetch(self):
        with pytest.raises(ValueError):
            PrefetchOnMissEngine(GEOMETRY, TIMING, n_prefetch=-1)

    def test_paper_trend_prefetch_helps_small_lines(self, medium_trace):
        """Table 6's trend: with 16 B lines, N=1 prefetch beats N=0."""
        geometry = CacheGeometry(8192, 16, 1)
        runs = to_line_runs(medium_trace.ifetch_addresses(), 16)
        n0 = PrefetchOnMissEngine(geometry, TIMING, 0).run(runs).cpi_instr
        n1 = PrefetchOnMissEngine(geometry, TIMING, 1).run(runs).cpi_instr
        assert n1 < n0
