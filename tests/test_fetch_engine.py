"""Unit tests for the fetch-engine framework and demand fetching."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.fetch.engine import DemandFetchEngine, FetchResult
from repro.fetch.timing import MemoryTiming
from repro.trace.rle import to_line_runs

GEOMETRY = CacheGeometry(1024, 32, 1)
TIMING = MemoryTiming(latency=6, bytes_per_cycle=16)  # penalty 7 for 32B


def _runs(addresses):
    return to_line_runs(np.asarray(addresses, dtype=np.uint64), 32)


class TestDemandFetchEngine:
    def test_every_miss_costs_full_penalty(self):
        engine = DemandFetchEngine(GEOMETRY, TIMING)
        # 3 distinct lines, no reuse: 3 misses x 7 cycles.
        result = engine.run(_runs([0, 32, 64]), warmup_fraction=0.0)
        assert result.misses == 3
        assert result.stall_cycles == 21
        assert result.instructions == 3

    def test_hits_cost_nothing(self):
        engine = DemandFetchEngine(GEOMETRY, TIMING)
        result = engine.run(_runs([0, 4, 8, 0]), warmup_fraction=0.0)
        # One line, one miss; the revisit after run-break hits.
        assert result.misses == 1
        assert result.stall_cycles == 7

    def test_cpi_instr(self):
        engine = DemandFetchEngine(GEOMETRY, TIMING)
        result = engine.run(_runs([0, 32, 0, 32]), warmup_fraction=0.0)
        # 1KB/32B direct-mapped = 32 sets; lines 0,1 do not conflict.
        assert result.cpi_instr == pytest.approx(2 * 7 / 4)

    def test_warmup_excludes_early_stalls(self):
        engine = DemandFetchEngine(GEOMETRY, TIMING)
        addresses = [i * 32 for i in range(10)]
        result = engine.run(_runs(addresses), warmup_fraction=0.5)
        assert result.instructions == 5
        assert result.stall_cycles == 5 * 7

    def test_mpi_equals_vectorized_measurement(self, medium_trace):
        """The engine's demand miss count must equal the vectorized MPI
        measurement — same cache, same stream, same convention."""
        from repro.core.metrics import measure_mpi

        geometry = CacheGeometry(8192, 32, 1)
        runs = to_line_runs(medium_trace.ifetch_addresses(), 32)
        engine = DemandFetchEngine(geometry, TIMING)
        engine_result = engine.run(runs, warmup_fraction=0.3)
        measured = measure_mpi(runs, geometry, warmup_fraction=0.3)
        assert engine_result.misses == measured.misses
        assert engine_result.instructions == measured.instructions
        assert engine_result.cpi_instr == pytest.approx(
            measured.cpi_contribution(7)
        )

    def test_wrong_granularity_rejected(self):
        engine = DemandFetchEngine(GEOMETRY, TIMING)
        with pytest.raises(ValueError, match="re-encode"):
            engine.run(to_line_runs(np.array([0], np.uint64), 16))


class TestFetchResult:
    def test_properties(self):
        result = FetchResult(instructions=100, stall_cycles=50, misses=10)
        assert result.cpi_instr == pytest.approx(0.5)
        assert result.mpi == pytest.approx(0.1)

    def test_empty(self):
        result = FetchResult(instructions=0, stall_cycles=0, misses=0)
        assert result.cpi_instr == 0.0
        assert result.mpi == 0.0
