"""Tests for the warm tier (``repro warm``): pre-populating the store."""

import asyncio

from repro.experiments.common import ExperimentSettings
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import JobScheduler
from repro.service.store import ResultStore
from repro.service.warm import warm_plan, warm_store
from repro.workloads.registry import suite_workloads

SETTINGS = ExperimentSettings(n_instructions=20_000, seed=0)


class TestWarmPlan:
    def test_plan_covers_the_requested_grid(self):
        plan = warm_plan(
            suite="ibs-mach3",
            configs=("economy",),
            mechanisms=("demand", "victim"),
            settings=SETTINGS,
        )
        expected = len(suite_workloads("ibs-mach3")) * 1 * 2
        assert len(plan) == expected
        assert len({request.key() for request in plan}) == expected

    def test_plan_defaults_to_the_whole_registry(self):
        plan = warm_plan(settings=SETTINGS)
        narrowed = warm_plan(suite="ibs-mach3", settings=SETTINGS)
        assert len(plan) > len(narrowed)


class TestWarmStore:
    def test_warm_fills_store_and_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        plan = warm_plan(
            suite="ibs-mach3",
            configs=("economy",),
            mechanisms=("demand",),
            settings=SETTINGS,
        )
        tally = warm_store(store, plan)
        assert tally["stored"] == len(plan)
        assert tally["skipped"] == 0
        assert len(store) == len(plan)
        for request in plan:
            assert store.get(request.key())["kind"] == "evaluate"
        again = warm_store(store, plan)
        assert again["stored"] == 0
        assert again["skipped"] == len(plan)

    def test_server_answers_warmed_cells_from_store(self, tmp_path):
        """The warm/serve key contract: a warmed cell never recomputes."""
        store = ResultStore(tmp_path / "results")
        plan = warm_plan(
            suite="ibs-mach3",
            configs=("economy",),
            mechanisms=("demand",),
            settings=SETTINGS,
        )
        warm_store(store, plan)
        scheduler = JobScheduler(
            ResultStore(tmp_path / "results"), ServiceMetrics()
        )
        try:
            async def body():
                job = await scheduler.submit_evaluate(plan[0])
                await job.wait()
                return job

            job = asyncio.run(body())
            assert job.status == "done"
            assert job.source == "store"
            assert scheduler.metrics.counter_value(
                "jobs_executed_total", {"kind": "evaluate"}) == 0
        finally:
            scheduler.close()
