"""Smoke test of the cold/warm cache benchmark tool.

Doubles as the acceptance check for the disk cache: the warm rerun must
spend (approximately) zero time in the ``synthesize`` phase.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

_BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "tools" / "bench_smoke.py"
)


@pytest.fixture(scope="module")
def bench_smoke():
    spec = importlib.util.spec_from_file_location("bench_smoke", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_cold_warm_bench(bench_smoke, tmp_path):
    record = bench_smoke.bench(
        experiment="table5",
        n_instructions=20_000,
        jobs=1,
        cache_dir=str(tmp_path / "cache"),
    )
    cold = record["cold"]["phase_totals"]
    warm = record["warm"]["phase_totals"]
    # Cold run pays for synthesis; warm run must skip it entirely.
    assert cold.get("synthesize", 0.0) > 0.0
    assert warm.get("synthesize", 0.0) == pytest.approx(0.0, abs=1e-6)
    assert warm.get("trace-load", 0.0) > 0.0
    assert record["cache_entries"] > 0
    assert record["cache_bytes"] > 0
    # The fetch-engine comparison ran and the two paths agreed.
    fetch = record["fetch"]
    assert fetch["renders_identical"] is True
    assert fetch["speedup"] > 1.0
    # The JSON record round-trips.
    assert json.loads(json.dumps(record)) == record


def test_obs_dir_links_trace_artifacts(bench_smoke, tmp_path):
    """With ``--obs-dir`` the record carries its trace id plus paths to
    a loadable manifest and a chrome-trace export with cell spans (what
    the CI export-validation step relies on)."""
    from repro.obs.manifest import load_manifest

    record = bench_smoke.bench(
        experiment="table5",
        n_instructions=20_000,
        jobs=1,
        cache_dir=str(tmp_path / "cache"),
        obs_dir=str(tmp_path / "obs"),
    )
    obs = record["obs"]
    manifest = load_manifest(obs["manifest"])
    assert manifest["trace_id"] == obs["trace_id"]
    # The benchmark's cold/warm/fetch stages are spans of one run.
    names = {span["name"] for span in manifest["spans"]}
    assert {"bench-smoke", "cold", "warm", "fetch-compare"} <= names
    trace = json.loads(pathlib.Path(obs["chrome_trace"]).read_text())
    cells = [
        event for event in trace["traceEvents"]
        if event.get("name") == "cell" and event.get("ph") == "X"
    ]
    assert len(cells) >= 1


def test_main_writes_json(bench_smoke, tmp_path, monkeypatch, capsys):
    out = tmp_path / "bench.json"
    monkeypatch.setattr(
        sys, "argv",
        [
            "bench_smoke.py", "--experiment", "table5",
            "--instructions", "20000",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out),
        ],
    )
    bench_smoke.main()
    record = json.loads(out.read_text())
    assert record["experiment"] == "table5"
    assert "cold" in record and "warm" in record
    assert "wrote" in capsys.readouterr().out
