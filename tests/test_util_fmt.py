"""Unit tests for the text table renderers."""

from repro._util.fmt import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 44]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.123" in text

    def test_none_renders_dash(self):
        text = format_table(["v"], [[None]])
        assert "-" in text.splitlines()[-1]


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series(
            "size", [8, 16], {"a": [1.0, 2.0], "b": [3.0, 4.0]}
        )
        assert "size" in text
        assert "1.000" in text and "4.000" in text

    def test_none_value(self):
        text = format_series("x", [1], {"s": [None]})
        assert "-" in text.splitlines()[-1]

    def test_precision(self):
        text = format_series("x", [1], {"s": [0.123456]}, precision=5)
        assert "0.12346" in text
