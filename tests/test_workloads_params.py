"""Unit tests for workload parameter records."""

import pytest

from repro.trace.record import Component
from repro.workloads.params import ComponentParams, WorkloadParams


def _component(**overrides):
    defaults = dict(exec_fraction=1.0, code_kb=64.0)
    defaults.update(overrides)
    return ComponentParams(**defaults)


class TestComponentParams:
    def test_n_procedures(self):
        params = _component(code_kb=64.0, mean_proc_bytes=512.0)
        assert params.n_procedures == 128

    def test_n_procedures_minimum(self):
        params = _component(code_kb=0.1, mean_proc_bytes=4096.0)
        assert params.n_procedures >= 2

    @pytest.mark.parametrize(
        "field,value",
        [
            ("exec_fraction", 1.5),
            ("code_kb", 0),
            ("theta", -1),
            ("visit_instructions", 0),
            ("mean_run", 0),
            ("loop_back_prob", 2.0),
            ("branch_jump_prob", -0.1),
            ("random_entry_fraction", 1.1),
            ("data_kb", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            _component(**{field: value})


class TestWorkloadParams:
    def _workload(self, fractions=(0.7, 0.3)):
        components = {
            Component.USER: _component(exec_fraction=fractions[0]),
            Component.KERNEL: _component(exec_fraction=fractions[1]),
        }
        return WorkloadParams(
            name="w", os_name="mach3", description="", components=components
        )

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            self._workload(fractions=(0.7, 0.4))

    def test_total_code_kb(self):
        workload = self._workload()
        assert workload.total_code_kb == pytest.approx(128.0)

    def test_needs_components(self):
        with pytest.raises(ValueError):
            WorkloadParams(
                name="w", os_name="x", description="", components={}
            )

    def test_scaled_footprint(self):
        workload = self._workload().scaled_footprint(2.0)
        assert workload.total_code_kb == pytest.approx(256.0)

    def test_scaled_visits(self):
        workload = self._workload().scaled_visits(3.0)
        for params in workload.components.values():
            assert params.visit_instructions == pytest.approx(270.0)

    def test_scaling_preserves_fractions(self):
        workload = self._workload().scaled_footprint(1.7)
        total = sum(c.exec_fraction for c in workload.components.values())
        assert total == pytest.approx(1.0)

    @pytest.mark.parametrize("factor", [0, -1])
    def test_rejects_bad_factors(self, factor):
        with pytest.raises(ValueError):
            self._workload().scaled_footprint(factor)
