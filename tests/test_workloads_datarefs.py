"""Unit tests for the data-reference address model."""

import numpy as np

from repro._util.rng import make_rng
from repro.trace.record import Component
from repro.vm.addrspace import AddressSpaceLayout
from repro.workloads.datarefs import DataReferenceModel
from repro.workloads.registry import get_workload


def _model(name="gcc"):
    return DataReferenceModel(get_workload(name, "mach3"), seed=1)


class TestDataReferenceModel:
    def test_addresses_word_aligned(self):
        model = _model()
        rng = make_rng(2)
        components = np.zeros(1000, dtype=np.uint8)
        out = model.addresses(components, np.zeros(1000, bool), rng)
        assert (out % 4 == 0).all()

    def test_addresses_in_component_data_or_stack_regions(self):
        model = _model()
        layout = AddressSpaceLayout()
        rng = make_rng(3)
        components = np.full(2000, int(Component.KERNEL), dtype=np.uint8)
        out = model.addresses(components, np.zeros(2000, bool), rng)
        data_base = layout.data_base(Component.KERNEL)
        stack_base = layout.stack_base(Component.KERNEL)
        in_data = (out >= data_base) & (out < data_base + (64 << 20))
        in_stack = (out >= stack_base - (1 << 20)) & (out < stack_base)
        assert (in_data | in_stack).all()

    def test_stack_fraction_roughly_respected(self):
        model = _model()
        layout = AddressSpaceLayout()
        rng = make_rng(4)
        components = np.zeros(5000, dtype=np.uint8)
        out = model.addresses(components, np.zeros(5000, bool), rng)
        stack_base = layout.stack_base(Component.USER)
        stack_refs = ((out < stack_base) & (out >= stack_base - (1 << 16))).sum()
        assert 0.3 < stack_refs / 5000 < 0.5

    def test_heap_reuse_is_skewed(self):
        # Zipf reuse: the most popular 10% of touched words should
        # carry well over 10% of references.
        model = _model()
        rng = make_rng(5)
        components = np.zeros(20_000, dtype=np.uint8)
        out = model.addresses(components, np.zeros(20_000, bool), rng)
        layout = AddressSpaceLayout()
        heap = out[out < layout.stack_base(Component.USER) - (1 << 20)]
        values, counts = np.unique(heap, return_counts=True)
        counts.sort()
        top10 = counts[-max(1, len(counts) // 10):].sum()
        assert top10 / counts.sum() > 0.3

    def test_mixed_components(self):
        model = _model("mpeg_play")
        rng = make_rng(6)
        components = np.array(
            [int(Component.USER), int(Component.X_SERVER)] * 500, dtype=np.uint8
        )
        out = model.addresses(components, np.zeros(1000, bool), rng)
        assert (out > 0).all()
