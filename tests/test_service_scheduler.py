"""Unit tests for the coalescing/batching job scheduler."""

import asyncio

import pytest

from repro.experiments import table2
from repro.experiments.common import ExperimentSettings
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import EvaluateRequest, JobScheduler
from repro.service.store import ResultStore

SETTINGS = ExperimentSettings(n_instructions=20_000, seed=0)


def _run(coroutine):
    return asyncio.run(coroutine)


def _evaluate_request(workload="gcc", config="economy", mechanism="demand"):
    return EvaluateRequest(
        workload=workload,
        os_name="mach3",
        config_name=config,
        mechanism=mechanism,
        settings=SETTINGS,
    )


@pytest.fixture
def make_scheduler(tmp_path):
    """Factory building schedulers that share one persistent store."""
    created = []

    def build(**kwargs):
        store = ResultStore(tmp_path / "results")
        scheduler = JobScheduler(store, ServiceMetrics(), **kwargs)
        created.append(scheduler)
        return scheduler

    yield build
    for scheduler in created:
        scheduler.close()


class TestExperimentJobs:
    def test_coalesced_single_flight(self, make_scheduler):
        scheduler = make_scheduler()

        async def body():
            first, second = await asyncio.gather(
                scheduler.submit_experiment("table2", table2, SETTINGS),
                scheduler.submit_experiment("table2", table2, SETTINGS),
            )
            await asyncio.gather(first.wait(), second.wait())
            return first, second

        first, second = _run(body())
        assert first is second  # one job served both callers
        assert first.status == "done"
        assert first.coalesced == 1
        assert first.source == "executed"
        assert "Table 2" in first.rendering
        metrics = scheduler.metrics
        assert metrics.counter_value(
            "jobs_executed_total", {"kind": "experiment"}) == 1
        assert metrics.counter_value("jobs_coalesced_total") == 1
        assert metrics.counter_value(
            "jobs_submitted_total", {"kind": "experiment"}) == 1

    def test_store_hit_after_restart(self, make_scheduler):
        warm = make_scheduler()

        async def run_once(scheduler):
            job = await scheduler.submit_experiment("table2", table2, SETTINGS)
            await job.wait()
            return job

        executed = _run(run_once(warm))
        assert executed.source == "executed"

        # A fresh scheduler + store instance over the same directory
        # simulates a cold server restart.
        cold = make_scheduler()
        replayed = _run(run_once(cold))
        assert replayed.status == "done"
        assert replayed.source == "store"
        assert replayed.rendering == executed.rendering
        assert cold.metrics.counter_value("result_store_hits_total") == 1
        assert cold.metrics.counter_value(
            "jobs_executed_total", {"kind": "experiment"}) == 0

    def test_job_lookup_and_queue_depth(self, make_scheduler):
        scheduler = make_scheduler()

        async def body():
            job = await scheduler.submit_experiment("table2", table2, SETTINGS)
            assert scheduler.get_job(job.id) is job
            assert scheduler.get_job("nope") is None
            await job.wait()
            return job

        _run(body())
        assert scheduler.queue_depth == 0

    def test_phase_histograms_fed(self, make_scheduler):
        scheduler = make_scheduler()

        async def body():
            job = await scheduler.submit_evaluate(_evaluate_request("nroff"))
            await job.wait()

        _run(body())
        histograms = scheduler.metrics.to_dict()["histograms"]
        assert "job_seconds" in histograms
        # Every evaluation runs the simulator under a timing phase, so
        # the live timing feed must have landed in the histograms.
        assert any(
            series["labels"] == {"phase": "simulate"} and series["count"] > 0
            for series in histograms.get("phase_seconds", [])
        )


class TestEvaluateJobs:
    def test_compatible_requests_batch(self, make_scheduler):
        scheduler = make_scheduler()
        requests = [
            _evaluate_request("gcc"),
            _evaluate_request("sdet"),
            _evaluate_request("gcc", config="high-performance"),
        ]

        async def body():
            jobs = await asyncio.gather(
                *(scheduler.submit_evaluate(r) for r in requests)
            )
            await asyncio.gather(*(job.wait() for job in jobs))
            return jobs

        jobs = _run(body())
        assert all(job.status == "done" for job in jobs)
        assert len({job.key for job in jobs}) == 3
        metrics = scheduler.metrics
        # Same batch signature → one run_cells dispatch for all three.
        assert metrics.counter_value("eval_batches_total") == 1
        assert metrics.counter_value(
            "jobs_executed_total", {"kind": "evaluate"}) == 3
        cpi = jobs[0].result["metrics"]["cpi_instr"]
        assert cpi > 1.0

    def test_batched_matches_direct_evaluate(self, make_scheduler):
        from repro.core.config import MemorySystemConfig
        from repro.core.study import evaluate

        scheduler = make_scheduler()

        async def body():
            job = await scheduler.submit_evaluate(_evaluate_request("gcc"))
            await job.wait()
            return job

        job = _run(body())
        direct = evaluate(
            "gcc", "mach3", MemorySystemConfig.economy(),
            n_instructions=SETTINGS.n_instructions, seed=SETTINGS.seed,
            warmup_fraction=SETTINGS.warmup_fraction,
        )
        assert job.result["metrics"]["cpi_instr"] == pytest.approx(
            direct.cpi_instr
        )

    def test_identical_evaluates_coalesce(self, make_scheduler):
        scheduler = make_scheduler()

        async def body():
            first, second = await asyncio.gather(
                scheduler.submit_evaluate(_evaluate_request("gcc")),
                scheduler.submit_evaluate(_evaluate_request("gcc")),
            )
            await first.wait()
            return first, second

        first, second = _run(body())
        assert first is second
        assert scheduler.metrics.counter_value(
            "jobs_executed_total", {"kind": "evaluate"}) == 1

    def test_failure_names_cell(self, make_scheduler):
        scheduler = make_scheduler()
        bad = EvaluateRequest(
            workload="no-such-workload",
            os_name="mach3",
            config_name="economy",
            mechanism="demand",
            settings=SETTINGS,
        )

        async def body():
            job = await scheduler.submit_evaluate(bad)
            await job.wait()
            return job

        job = _run(body())
        assert job.status == "failed"
        # The CellExecutionError wrap names the failing cell identity.
        assert "no-such-workload" in job.error
        assert scheduler.metrics.counter_value(
            "jobs_failed_total", {"kind": "evaluate"}) == 1
        assert scheduler.queue_depth == 0


class TestDispatchMetrics:
    def test_engine_dispatch_counted(self, make_scheduler):
        """Fetch simulations land in engine_dispatch_total — and a
        mechanism that used to fall back to the reference engines now
        counts as vectorized (full kernel coverage)."""
        scheduler = make_scheduler()

        async def body():
            job = await scheduler.submit_evaluate(
                _evaluate_request(mechanism="victim")
            )
            await job.wait()
            return job

        job = _run(body())
        assert job.status == "done"
        assert scheduler.metrics.counter_value(
            "engine_dispatch_total",
            {"mechanism": "victim", "engine": "vectorized"},
        ) >= 1
        assert scheduler.metrics.counter_value(
            "engine_dispatch_total",
            {"mechanism": "victim", "engine": "reference"},
        ) == 0
