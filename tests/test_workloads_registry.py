"""Unit tests for the workload registry and trace cache."""

import pytest

from repro.workloads.ibs import IBS_WORKLOADS, ibs_workload
from repro.workloads.registry import (
    clear_trace_cache,
    get_trace,
    get_workload,
    list_workloads,
    suite_names,
    suite_workloads,
)
from repro.workloads.spec import spec_workload


class TestLookups:
    def test_ibs_mach(self):
        workload = get_workload("groff", "mach3")
        assert workload.name == "groff"
        assert workload.os_name == "mach3"

    def test_ibs_ultrix_derived(self):
        workload = get_workload("groff", "ultrix")
        assert workload.os_name == "ultrix"

    def test_spec(self):
        workload = get_workload("eqntott", "spec92")
        assert workload.name == "eqntott"

    def test_spec89(self):
        assert get_workload("matrix300", "spec89").os_name == "spec89"

    @pytest.mark.parametrize(
        "name,os_name",
        [("nonesuch", "mach3"), ("groff", "spec92"), ("groff", "bsd")],
    )
    def test_unknown(self, name, os_name):
        with pytest.raises(KeyError):
            get_workload(name, os_name)

    def test_ibs_workload_helper(self):
        assert ibs_workload("gs").name == "gs"
        with pytest.raises(KeyError):
            ibs_workload("nonesuch")

    def test_spec_workload_helper(self):
        assert spec_workload("fpppp").name == "fpppp"
        with pytest.raises(KeyError):
            spec_workload("nonesuch")


class TestSuites:
    def test_suite_names(self):
        names = suite_names()
        for expected in ("ibs-mach3", "ibs-ultrix", "spec92",
                         "specint92", "specfp92", "specint89", "specfp89"):
            assert expected in names

    def test_ibs_suite_has_eight_workloads(self):
        assert len(suite_workloads("ibs-mach3")) == 8
        assert len(suite_workloads("ibs-ultrix")) == 8

    def test_spec92_union(self):
        spec = suite_workloads("spec92")
        assert len(spec) == len(suite_workloads("specint92")) + len(
            suite_workloads("specfp92")
        )

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            suite_workloads("spec2006")

    def test_list_workloads_filter(self):
        all_pairs = list_workloads()
        mach_only = list_workloads("mach3")
        assert len(mach_only) == 8
        assert set(mach_only).issubset(set(all_pairs))

    def test_every_ibs_workload_has_paper_target(self):
        for workload in IBS_WORKLOADS.values():
            assert workload.target_mpi_8kb is not None
            assert workload.description


class TestTraceCache:
    def test_cache_returns_same_object(self):
        a = get_trace("gcc", "mach3", 10_000, seed=42)
        b = get_trace("gcc", "mach3", 10_000, seed=42)
        assert a is b

    def test_distinct_keys_distinct_traces(self):
        a = get_trace("gcc", "mach3", 10_000, seed=42)
        b = get_trace("gcc", "mach3", 10_000, seed=43)
        assert a is not b

    def test_clear(self):
        a = get_trace("gcc", "mach3", 10_000, seed=44)
        clear_trace_cache()
        b = get_trace("gcc", "mach3", 10_000, seed=44)
        assert a is not b


class TestBoundedCache:
    """The in-memory layer is a bounded LRU, not an unbounded dict."""

    def _restore(self):
        from repro.workloads.registry import configure_trace_cache

        configure_trace_cache(max_entries=64, max_bytes=2 * 1024**3)

    def test_stats_report_bounds(self):
        from repro.workloads.registry import trace_cache_stats

        stats = trace_cache_stats()
        assert stats["max_entries"] > 0
        assert stats["max_bytes"] > 0
        assert stats["entries"] >= 0

    def test_entry_limit_evicts_lru(self):
        from repro.workloads.registry import (
            configure_trace_cache,
            trace_cache_stats,
        )

        try:
            clear_trace_cache()
            configure_trace_cache(max_entries=2)
            a = get_trace("gcc", "mach3", 10_000, seed=50)
            b = get_trace("groff", "mach3", 10_000, seed=50)
            # Touch a so b is now least-recently used.
            assert get_trace("gcc", "mach3", 10_000, seed=50) is a
            c = get_trace("sdet", "mach3", 10_000, seed=50)
            assert trace_cache_stats()["entries"] == 2
            # a (recently used) and c (new) survive; b was evicted.
            assert get_trace("gcc", "mach3", 10_000, seed=50) is a
            assert get_trace("sdet", "mach3", 10_000, seed=50) is c
            assert get_trace("groff", "mach3", 10_000, seed=50) is not b
        finally:
            self._restore()
            clear_trace_cache()

    def test_byte_limit_evicts(self):
        from repro.workloads.registry import (
            configure_trace_cache,
            trace_cache_stats,
        )

        try:
            clear_trace_cache()
            a = get_trace("gcc", "mach3", 10_000, seed=51)
            nbytes = (
                a.addresses.nbytes + a.kinds.nbytes + a.components.nbytes
            )
            # Room for one resident trace but not two.
            configure_trace_cache(max_entries=64, max_bytes=int(nbytes * 1.5))
            get_trace("groff", "mach3", 10_000, seed=51)
            stats = trace_cache_stats()
            assert stats["entries"] == 1
            assert stats["resident_bytes"] <= int(nbytes * 1.5)
        finally:
            self._restore()
            clear_trace_cache()

    def test_rejects_nonpositive_bounds(self):
        import pytest as _pytest

        from repro.workloads.registry import configure_trace_cache

        with _pytest.raises(ValueError):
            configure_trace_cache(max_entries=0)
        with _pytest.raises(ValueError):
            configure_trace_cache(max_bytes=-1)
