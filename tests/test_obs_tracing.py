"""Unit tests for the span-tracing substrate (``repro.obs.tracing``).

Covers the recorder/span lifecycle, the observer bridges that absorb
the phase/dispatch/cache event streams, suppression around pool
replays, worker-side cell capture, and re-parenting of shipped spans
— including the end-to-end ``run_cells(jobs=2)`` path across a real
process pool.
"""

from __future__ import annotations

import time

import pytest

from repro.fetch import dispatch
from repro.obs import tracing
from repro.runner import timing
from repro.runner.pool import ExperimentCell, run_cells


@pytest.fixture(autouse=True)
def _clean_state():
    timing.reset()
    dispatch.reset()
    yield
    timing.reset()
    dispatch.reset()
    tracing.enable_worker_capture(False)


class TestSpanLifecycle:
    def test_inert_without_recorder(self):
        assert tracing.active_recorder() is None
        with tracing.span("orphan") as current:
            assert current is None
        assert tracing.current_trace_id() is None
        assert tracing.current_span() is None

    def test_run_collects_root_span(self):
        with tracing.run("demo", flavour="test") as recorder:
            assert tracing.active_recorder() is recorder
            assert tracing.current_trace_id() == recorder.trace_id
        spans = recorder.spans
        assert len(spans) == 1
        root = spans[0]
        assert root["name"] == "demo"
        assert root["parent_id"] is None
        assert root["trace_id"] == recorder.trace_id
        assert root["attrs"]["kind"] == "run"
        assert root["attrs"]["flavour"] == "test"
        assert root["wall_seconds"] >= 0.0

    def test_run_kind_attr_does_not_collide(self):
        # Regression: run() used to pass kind= positionally into span(),
        # so callers supplying their own kind attr crashed.
        with tracing.run("job", kind="experiment") as recorder:
            pass
        assert recorder.spans[0]["attrs"]["kind"] == "experiment"

    def test_explicit_trace_id(self):
        with tracing.run("demo", trace_id="abc123") as recorder:
            assert recorder.trace_id == "abc123"
        assert recorder.spans[0]["trace_id"] == "abc123"

    def test_nesting_records_parent_ids(self):
        with tracing.run("outer") as recorder:
            root = tracing.current_span()
            with tracing.span("child"):
                child = tracing.current_span()
                with tracing.span("grandchild"):
                    pass
        by_name = {span["name"]: span for span in recorder.spans}
        assert by_name["child"]["parent_id"] == root.span_id
        assert by_name["grandchild"]["parent_id"] == child.span_id
        # Innermost spans finish (and are recorded) first.
        names = [span["name"] for span in recorder.spans]
        assert names == ["grandchild", "child", "outer"]

    def test_on_span_callback_fires_per_span(self):
        seen = []
        with tracing.run("demo", on_span=lambda r: seen.append(r["name"])):
            with tracing.span("inner"):
                pass
        assert seen == ["inner", "demo"]

    def test_attrs_are_json_safe(self):
        with tracing.run("demo") as recorder:
            with tracing.span("s", key=("a", 1), obj=object()):
                pass
        attrs = recorder.spans[0]["attrs"]
        assert attrs["key"] == ["a", 1]
        assert isinstance(attrs["obj"], str)

    def test_event_cap_counts_drops(self):
        with tracing.run("demo") as recorder:
            current = tracing.current_span()
            for index in range(tracing.MAX_EVENTS_PER_SPAN + 5):
                current.add_event("tick", index=index)
        root = recorder.spans[0]
        assert len(root["events"]) == tracing.MAX_EVENTS_PER_SPAN
        assert root["dropped_events"] == 5


class TestBridges:
    def test_phase_bridge_attaches_to_innermost_span(self):
        with tracing.run("demo") as recorder:
            with tracing.span("inner"):
                with timing.phase("simulate"):
                    time.sleep(0.005)
        by_name = {span["name"]: span for span in recorder.spans}
        assert by_name["inner"]["phases"]["simulate"] >= 0.001
        assert "simulate" not in by_name["demo"]["phases"]

    def test_dispatch_bridge_aggregates_counts(self):
        with tracing.run("demo") as recorder:
            dispatch.record("demand", dispatch.ENGINE_VECTORIZED, count=2)
            dispatch.record("demand", dispatch.ENGINE_VECTORIZED)
        root = recorder.spans[0]
        assert root["engine_dispatch"] == {
            dispatch.ENGINE_VECTORIZED: {"demand": 3}
        }

    def test_trace_cache_bridge_counts_outcomes(self):
        from repro.workloads import registry

        with tracing.run("demo") as recorder:
            registry._notify_cache("memory-hit")
            registry._notify_cache("memory-hit")
            registry._notify_cache("synthesized")
        root = recorder.spans[0]
        assert root["trace_cache"] == {"memory-hit": 2, "synthesized": 1}

    def test_suppressed_blocks_bridges(self):
        with tracing.run("demo") as recorder:
            with tracing.suppressed():
                timing.notify_phases({"simulate": 1.0})
                dispatch.notify({("demand", "vectorized"): 4})
        root = recorder.spans[0]
        assert root["phases"] == {}
        assert root["engine_dispatch"] == {}

    def test_bridges_silent_without_recorder(self):
        # No recorder bound: the bridged streams must not explode.
        timing.notify_phases({"simulate": 1.0})
        dispatch.notify({("demand", "vectorized"): 1})


class TestAdoption:
    def _worker_records(self):
        return [
            {"span_id": "w-root", "parent_id": None,
             "trace_id": "unadopted", "name": "cell"},
            {"span_id": "w-leaf", "parent_id": "w-root",
             "trace_id": "unadopted", "name": "evaluate"},
        ]

    def test_adopt_reparents_roots_and_unifies_trace_id(self):
        recorder = tracing.RunRecorder("parent")
        recorder.adopt(self._worker_records(), parent_id="coordinator")
        by_id = {span["span_id"]: span for span in recorder.spans}
        assert by_id["w-root"]["parent_id"] == "coordinator"
        # Intra-batch parentage survives; only roots are re-parented.
        assert by_id["w-leaf"]["parent_id"] == "w-root"
        assert all(
            span["trace_id"] == recorder.trace_id
            for span in recorder.spans
        )

    def test_adopt_does_not_mutate_shipped_records(self):
        records = self._worker_records()
        tracing.RunRecorder("parent").adopt(records, parent_id="x")
        assert records[0]["trace_id"] == "unadopted"
        assert records[0]["parent_id"] is None


class TestCellCapture:
    def test_live_mode_opens_cell_span(self):
        with tracing.run("demo") as recorder:
            with tracing.cell_capture(("t", 1), {"engine": "auto"}) as holder:
                pass
            assert holder.records == []
        cell = [s for s in recorder.spans if s["name"] == "cell"][0]
        assert cell["attrs"]["key"] == ["t", 1]
        assert cell["attrs"]["engine"] == "auto"

    def test_worker_mode_ships_records(self):
        tracing.enable_worker_capture(True)
        with tracing.cell_capture(("t", 2)) as holder:
            with tracing.span("evaluate"):
                pass
        assert [span["name"] for span in holder.records] == \
            ["evaluate", "cell"]
        roots = [s for s in holder.records if s["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "cell"

    def test_disabled_mode_is_noop(self):
        with tracing.cell_capture(("t", 3)) as holder:
            pass
        assert holder.records == []


def _traced_cell(tag: str) -> str:
    with timing.phase("simulate"):
        time.sleep(0.002)
    dispatch.record("demand", dispatch.ENGINE_VECTORIZED)
    return tag


class TestPoolIntegration:
    def test_jobs2_reparents_worker_spans(self):
        cells = [
            ExperimentCell(key=("cell", i), fn=_traced_cell, args=(f"r{i}",))
            for i in range(3)
        ]
        with tracing.run("pool-run") as recorder:
            with tracing.span("experiment"):
                coordinator = tracing.current_span()
                results, _ = run_cells(cells, jobs=2)
        assert results == ["r0", "r1", "r2"]
        spans = recorder.spans
        cell_spans = [s for s in spans if s["name"] == "cell"]
        assert len(cell_spans) == 3
        span_ids = {s["span_id"] for s in spans}
        for cell in cell_spans:
            # Re-parented under the coordinating span of this run.
            assert cell["parent_id"] == coordinator.span_id
            assert cell["parent_id"] in span_ids
            assert cell["trace_id"] == recorder.trace_id
            assert cell["phases"].get("simulate", 0.0) > 0.0
            assert cell["engine_dispatch"] == {
                dispatch.ENGINE_VECTORIZED: {"demand": 1}
            }

    def test_serial_run_traces_cells_live(self):
        cells = [
            ExperimentCell(key=("cell", 0), fn=_traced_cell, args=("r",))
        ]
        with tracing.run("serial-run") as recorder:
            run_cells(cells, jobs=1)
        cell = [s for s in recorder.spans if s["name"] == "cell"][0]
        assert cell["trace_id"] == recorder.trace_id
        assert cell["phases"].get("simulate", 0.0) > 0.0
