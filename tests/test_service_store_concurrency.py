"""Concurrent-writer hardening tests for the result store.

The serving story puts several processes over one store root: a warm
tier filling it, a live server reading it, maybe a second server
sharing it.  These tests check the cross-process contract: no torn
entries (every published ``meta.json`` parses), no lost entries (every
written key is readable from a fresh store and from sibling instances),
and eviction under a byte budget never corrupts a reader — and, end to
end, that a two-worker ``repro serve`` fleet receiving the same
evaluate key over real HTTP publishes exactly one store entry.
"""

import asyncio
import json
import multiprocessing
import os
import sys

import pytest

from repro.service.store import ResultStore

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="fork + flock are POSIX-only"
)

N_WORKERS = 4
N_KEYS = 24


def _payload(i: int) -> dict:
    # Content-addressed contract: every writer of a key writes the
    # identical payload, exactly as coinciding warm/serve computes do.
    return {"kind": "evaluate", "name": f"cell-{i:04d}", "value": i}


def _stress_writer(root, barrier, n_keys):
    store = ResultStore(root)
    barrier.wait()  # maximize publish-race contention
    for i in range(n_keys):
        key = f"key-{i:04d}"
        store.put(key, _payload(i), rendering=f"row {i}\n" * 8)
        got = store.get(key)
        assert got is not None, f"lost entry {key}"
        assert got["value"] == i, f"torn entry {key}: {got}"


class TestMultiProcessStress:
    def test_concurrent_writers_lose_nothing(self, tmp_path):
        root = str(tmp_path / "results")
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(N_WORKERS)
        workers = [
            context.Process(
                target=_stress_writer, args=(root, barrier, N_KEYS)
            )
            for _ in range(N_WORKERS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        # A fresh store over the same root sees every key, none torn.
        store = ResultStore(root)
        assert len(store) == N_KEYS
        for i in range(N_KEYS):
            key = f"key-{i:04d}"
            assert store.get(key) == _payload(i)
            assert store.get_rendering(key) == f"row {i}\n" * 8
        # Losing writers cleaned up their staging dirs; every on-disk
        # child is either internal (dotted) or a parseable entry.
        for child in os.listdir(root):
            if child.startswith("."):
                continue
            with open(os.path.join(root, child, "meta.json")) as handle:
                json.load(handle)
        assert not [
            child for child in os.listdir(root)
            if child.startswith(".staging-")
        ]

    def test_accounting_consistent_after_stress(self, tmp_path):
        root = str(tmp_path / "results")
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        workers = [
            context.Process(
                target=_stress_writer, args=(root, barrier, N_KEYS)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        store = ResultStore(root)
        disk_bytes = 0
        for child in os.listdir(root):
            entry = os.path.join(root, child)
            if child.startswith(".") or not os.path.isdir(entry):
                continue
            for name in os.listdir(entry):
                disk_bytes += os.path.getsize(os.path.join(entry, name))
        assert store.current_bytes == disk_bytes
        assert store.current_bytes > 0


class TestCrossInstanceVisibility:
    def test_sibling_instance_adopts_published_entry(self, tmp_path):
        root = str(tmp_path / "results")
        reader = ResultStore(root)  # opened before the write lands
        writer = ResultStore(root)
        writer.put("abc123", _payload(1), rendering="hello")
        # The reader never saw the put; __contains__/get adopt it.
        assert "abc123" in reader
        assert reader.get("abc123") == _payload(1)
        assert reader.get_rendering("abc123") == "hello"
        assert reader.current_bytes == writer.current_bytes

    def test_put_over_foreign_entry_is_idempotent(self, tmp_path):
        root = str(tmp_path / "results")
        writer = ResultStore(root)
        writer.put("abc123", _payload(1))
        late = ResultStore.__new__(ResultStore)  # skip _scan on purpose
        ResultStore.__init__(late, None)
        late.root = os.path.abspath(root)
        late.put("abc123", _payload(1))
        assert len(late) == 1
        assert late.get("abc123") == _payload(1)

    def test_adopt_rejects_hostile_keys(self, tmp_path):
        store = ResultStore(str(tmp_path / "results"))
        store.put("good", _payload(0))
        for bad in ("", ".lock", ".staging-x", "../escape", "a/b"):
            assert bad not in store

    def test_evicted_by_sibling_reads_as_missing(self, tmp_path):
        root = str(tmp_path / "results")
        holder = ResultStore(root, max_bytes=1 << 20)
        holder.put("victim", _payload(0), rendering="x" * 256)
        # A sibling with a tiny budget evicts everything but the MRU.
        evictor = ResultStore(root, max_bytes=1)
        for i in range(3):
            evictor.put(f"filler-{i}", _payload(i))
        # The holder's stale accounting degrades to a clean miss.
        assert holder.get("victim") is None
        assert "victim" not in ResultStore(root)

    def test_scan_ignores_staging_and_lock_artifacts(self, tmp_path):
        root = tmp_path / "results"
        store = ResultStore(str(root))
        store.put("real", _payload(0))
        torn = root / ".staging-torn"
        torn.mkdir()
        (torn / "meta.json").write_text('{"kind": "evaluate"}')
        fresh = ResultStore(str(root))
        assert len(fresh) == 1
        assert "real" in fresh


class TestTwoWorkerSingleFlight:
    """Store-level single-flight across a real two-worker fleet.

    Each worker of a ``repro serve --workers 2`` fleet receives the
    *same* evaluate key over real HTTP (addressed directly via the
    control ports ``/healthz`` reports, so the kernel's accept
    balancing can't collapse the race onto one process).  Both compute
    concurrently; the cross-process flock publish and adopt-on-miss
    must collapse the results into exactly one store entry, and both
    responses must be served from it.
    """

    def test_same_key_on_both_workers_one_store_entry(self, tmp_path):
        from tests.test_service_supervisor import _ServeProcess

        server = _ServeProcess(tmp_path)
        try:
            server.wait_listening()
            payload = server.wait_healthy_fleet(2)
            ports = sorted(
                entry["control_port"]
                for entry in payload["workers"]
                if entry.get("alive")
            )
            assert len(ports) == 2

            body = json.dumps({
                "workload": "gcc",
                "instructions": 20_000,
                "wait": True,
            }).encode()

            async def post(port: int) -> dict:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                try:
                    writer.write(
                        (
                            "POST /v1/evaluate HTTP/1.1\r\nHost: t\r\n"
                            "Connection: close\r\n"
                            f"Content-Length: {len(body)}\r\n\r\n"
                        ).encode() + body
                    )
                    await writer.drain()
                    raw = await asyncio.wait_for(reader.read(-1), 120)
                finally:
                    writer.close()
                head, _, raw_body = raw.partition(b"\r\n\r\n")
                assert head.split()[1] == b"200", head
                return json.loads(raw_body)

            async def race():
                return await asyncio.gather(*(post(p) for p in ports))

            first, second = asyncio.run(race())
            # Both workers answered the same key with identical results.
            assert first["key"] == second["key"]
            assert first["status"] == second["status"] == "done"
            assert first["result"] == second["result"]
            assert first["result"]["metrics"]["cpi_instr"] > 1.0
            # Exactly one published entry backs both responses.
            results_root = tmp_path / "cache" / "results"
            entries = [
                child for child in os.listdir(results_root)
                if not child.startswith(".")
            ]
            assert len(entries) == 1
            store = ResultStore(str(results_root))
            assert first["key"] in store
            assert server.terminate_and_wait() == 0
        finally:
            server.cleanup()
