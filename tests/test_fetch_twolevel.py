"""Unit tests for the integrated two-level fetch engine."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.fetch.timing import MemoryTiming
from repro.fetch.twolevel import TwoLevelDemandEngine
from repro.trace.record import Component, RefKind
from repro.trace.trace import Trace

L1 = CacheGeometry(1024, 32, 1)
L2 = CacheGeometry(8192, 64, 2)
INTERFACE = MemoryTiming(6, 16)   # L1 fill: 6+2-1 = 7
MEMORY = MemoryTiming(30, 4)      # L2 fill: 30+16-1 = 45


def _trace(addresses, kinds=None):
    n = len(addresses)
    kinds = kinds if kinds is not None else [RefKind.IFETCH] * n
    return Trace(
        np.asarray(addresses, dtype=np.uint64),
        np.asarray(kinds, dtype=np.uint8),
        np.full(n, Component.USER, dtype=np.uint8),
    )


class TestTwoLevelDemandEngine:
    def _engine(self, **kwargs):
        return TwoLevelDemandEngine(L1, L2, INTERFACE, MEMORY, **kwargs)

    def test_cold_miss_pays_memory(self):
        result = self._engine().run(_trace([0]), warmup_fraction=0.0)
        assert result.l1_misses == 1
        assert result.l2_misses == 1
        assert result.stall_cycles == 45

    def test_l2_hit_pays_interface(self):
        # Touch line 0, evict it from L1 via a conflict, touch it again:
        # second L1 miss hits in the L2.
        conflict = 1024  # same L1 set, different L1 tag
        result = self._engine().run(
            _trace([0, conflict, 0]), warmup_fraction=0.0
        )
        assert result.l1_misses == 3
        # Lines 0 and 1024 share an L2 64-byte line? 0>>6=0, 1024>>6=16:
        # distinct L2 lines -> 2 L2 misses, then the revisit hits L2.
        assert result.l2_misses == 2
        assert result.stall_cycles == 45 + 45 + 7

    def test_sequential_within_line_hits(self):
        result = self._engine().run(
            _trace([0, 4, 8, 12]), warmup_fraction=0.0
        )
        assert result.l1_misses == 1
        assert result.instructions == 4

    def test_shared_data_can_evict_instruction_lines(self):
        # Fill the L2 set of instruction line 0 with data lines between
        # two instruction visits; with shared_data the revisit misses
        # in L2, without it it hits.
        l2_sets = L2.n_sets  # 64 sets of 64B
        conflicting_data = [
            (s * l2_sets * 64) for s in range(1, 3)
        ]  # same L2 set 0, 2 ways -> evicts line 0
        addresses = [0, 1024]  # instr: L1 set conflict to force revisit miss
        kinds = [RefKind.IFETCH, RefKind.IFETCH]
        for address in conflicting_data:
            addresses.append(address)
            kinds.append(RefKind.LOAD)
        addresses.append(0)
        kinds.append(RefKind.IFETCH)

        without = self._engine(shared_data=False).run(
            _trace(addresses, kinds), warmup_fraction=0.0
        )
        with_data = self._engine(shared_data=True).run(
            _trace(addresses, kinds), warmup_fraction=0.0
        )
        assert with_data.l2_misses > without.l2_misses
        assert with_data.stall_cycles > without.stall_cycles

    def test_shared_data_never_reduces_fetch_stalls(self, medium_trace):
        engine_plain = TwoLevelDemandEngine(
            CacheGeometry(8192, 32, 1), CacheGeometry(65536, 64, 8),
            INTERFACE, MEMORY, shared_data=False,
        )
        engine_shared = TwoLevelDemandEngine(
            CacheGeometry(8192, 32, 1), CacheGeometry(65536, 64, 8),
            INTERFACE, MEMORY, shared_data=True,
        )
        trace = medium_trace[:150_000]
        plain = engine_plain.run(trace)
        shared = engine_shared.run(trace)
        assert shared.stall_cycles >= plain.stall_cycles

    def test_warmup_excluded(self):
        addresses = [i * 32 for i in range(10)]
        result = self._engine().run(_trace(addresses), warmup_fraction=0.5)
        assert result.instructions == 5
        assert result.l1_misses == 5

    def test_local_miss_ratio(self):
        result = self._engine().run(_trace([0, 1024, 0]), warmup_fraction=0.0)
        assert result.l2_local_miss_ratio == pytest.approx(2 / 3)

    def test_rejects_smaller_l2_line(self):
        with pytest.raises(ValueError):
            TwoLevelDemandEngine(
                CacheGeometry(1024, 64, 1), CacheGeometry(8192, 32, 1),
                INTERFACE, MEMORY,
            )
