"""Unit tests for the workload builder."""

import pytest

from repro.trace.record import Component
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.generator import synthesize_trace


class TestWorkloadBuilder:
    def _basic(self):
        return (
            WorkloadBuilder("svc", os_name="mach3")
            .component("user", fraction=0.6, code_kb=200)
            .component("kernel", fraction=0.4, code_kb=80)
        )

    def test_build(self):
        workload = self._basic().build()
        assert workload.name == "svc"
        assert workload.total_code_kb == pytest.approx(280.0)
        assert Component.KERNEL in workload.components

    def test_component_overrides(self):
        workload = (
            WorkloadBuilder("w")
            .component("user", fraction=1.0, code_kb=64,
                       theta=1.5, visit_instructions=33.0)
            .build()
        )
        params = workload.components[Component.USER]
        assert params.theta == 1.5
        assert params.visit_instructions == 33.0

    def test_data_options(self):
        workload = (
            self._basic()
            .data(load_rate=0.3, store_rate=0.05, streaming=0.5,
                  store_burst_len=2.0)
            .build()
        )
        assert workload.load_rate == 0.3
        assert workload.store_rate == 0.05
        assert workload.data_streaming_fraction == 0.5
        assert workload.store_burst_len == 2.0

    def test_scheduling(self):
        workload = self._basic().scheduling(burst_visits=12.0).build()
        assert workload.burst_visits == 12.0

    def test_fractions_validated_at_build(self):
        builder = WorkloadBuilder("bad").component(
            "user", fraction=0.6, code_kb=64
        )
        with pytest.raises(ValueError, match="sum"):
            builder.build()

    def test_duplicate_component_rejected(self):
        builder = WorkloadBuilder("w").component("user", 0.5, 64)
        with pytest.raises(ValueError, match="already defined"):
            builder.component("user", 0.5, 64)

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError, match="unknown component"):
            WorkloadBuilder("w").component("gpu", 1.0, 64)

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError, match="no components"):
            WorkloadBuilder("w").build()

    def test_needs_name(self):
        with pytest.raises(ValueError):
            WorkloadBuilder("")

    def test_built_workload_synthesizes(self):
        workload = (
            self._basic().data(load_rate=0.2, store_rate=0.1).build()
        )
        trace = synthesize_trace(workload, 20_000, seed=1)
        assert trace.instruction_count == 20_000
        assert trace.label == "svc@mach3"

    def test_docstring_example(self):
        workload = (
            WorkloadBuilder("webserver", os_name="mach3")
            .component("user", fraction=0.55, code_kb=300,
                       visit_instructions=40)
            .component("kernel", fraction=0.35, code_kb=120,
                       visit_instructions=25)
            .component("bsd_server", fraction=0.10, code_kb=60)
            .data(load_rate=0.25, store_rate=0.08, streaming=0.1)
            .build()
        )
        assert workload.total_code_kb == pytest.approx(480.0)
