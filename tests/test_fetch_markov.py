"""Unit tests for the Markov (miss-correlation) prefetcher."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.fetch.engine import DemandFetchEngine
from repro.fetch.markov import MarkovPrefetchEngine
from repro.fetch.timing import MemoryTiming
from repro.trace.rle import to_line_runs

GEOMETRY = CacheGeometry(1024, 32, 1)
TIMING = MemoryTiming(latency=6, bytes_per_cycle=16)


def _runs(addresses):
    return to_line_runs(np.asarray(addresses, dtype=np.uint64), 32)


class TestMarkovPrefetchEngine:
    def test_learns_repeating_miss_pattern(self):
        engine = MarkovPrefetchEngine(GEOMETRY, TIMING, n_buffers=4)
        # Two conflicting pairs force a repeating miss sequence
        # A -> B -> A -> B...; after one round trip the predictor
        # prefetches the successor.
        stride = 32 * 32
        a, b = 0, stride
        addresses = [a, b] * 30
        result = engine.run(_runs(addresses), warmup_fraction=0.0)
        assert engine.buffer_hits > 0
        demand = DemandFetchEngine(GEOMETRY, TIMING).run(
            _runs(addresses), warmup_fraction=0.0
        )
        assert result.stall_cycles < demand.stall_cycles

    def test_no_predictions_without_history(self):
        engine = MarkovPrefetchEngine(GEOMETRY, TIMING)
        engine.run(_runs([0]), warmup_fraction=0.0)
        assert engine.predictions_made == 0

    def test_hybrid_adds_sequential(self):
        engine = MarkovPrefetchEngine(GEOMETRY, TIMING, hybrid=True)
        engine.run(_runs([0]), warmup_fraction=0.0)
        # With no correlation history, hybrid still prefetches line+1.
        assert engine.predictions_made == 1

    def test_hybrid_helps_on_real_traces(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses()[:60_000], 32)
        geometry = CacheGeometry(8192, 32, 1)
        markov = MarkovPrefetchEngine(geometry, TIMING).run(runs)
        hybrid = MarkovPrefetchEngine(geometry, TIMING, hybrid=True).run(runs)
        demand = DemandFetchEngine(geometry, TIMING).run(runs)
        assert markov.stall_cycles < demand.stall_cycles
        assert hybrid.stall_cycles < markov.stall_cycles

    def test_table_is_bounded(self):
        engine = MarkovPrefetchEngine(GEOMETRY, TIMING, table_size=4)
        # A long non-repeating miss stream cannot grow the table past 4.
        addresses = [i * 32 * 32 for i in range(40)]
        engine.run(_runs(addresses), warmup_fraction=0.0)
        assert len(engine._table) <= 4

    def test_buffer_is_bounded(self):
        engine = MarkovPrefetchEngine(GEOMETRY, TIMING, n_buffers=2, hybrid=True)
        addresses = [i * 32 * 32 for i in range(40)]
        engine.run(_runs(addresses), warmup_fraction=0.0)
        assert len(engine._buffer) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovPrefetchEngine(GEOMETRY, TIMING, table_size=0)
        with pytest.raises(ValueError):
            MarkovPrefetchEngine(GEOMETRY, TIMING, n_buffers=0)
