"""Integration tests for the table experiments (reduced scale).

These run every table experiment end to end at a small trace length and
assert the paper's *qualitative* findings; the full-scale quantitative
comparison lives in the benchmarks and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import table1, table3, table4, table5, table6, table7, table8
from repro.experiments.common import ExperimentSettings

SETTINGS = ExperimentSettings(n_instructions=150_000, seed=0)


@pytest.fixture(scope="module")
def t5():
    return table5.run(SETTINGS)


class TestTable1:
    def test_rows_and_rendering(self):
        result = table1.run(ExperimentSettings(n_instructions=60_000, seed=0))
        assert set(result.rows) == set(table1.PAPER)
        text = result.render()
        assert "SPECint92" in text and "I-cache" in text

    def test_fp_pays_more_for_data(self):
        result = table1.run(ExperimentSettings(n_instructions=60_000, seed=0))
        assert (
            result.rows["specfp92"].data > result.rows["specint92"].data
        )


class TestTable3:
    def test_ibs_vs_spec_icache_gap(self):
        result = table3.run(ExperimentSettings(n_instructions=60_000, seed=0))
        ibs = result.rows["ibs-mach3"]
        spec = result.rows["specint92"]
        assert ibs.cpi_instr > 2 * spec.cpi_instr
        assert ibs.os_fraction > spec.os_fraction

    def test_mach_more_os_time_than_ultrix(self):
        result = table3.run(ExperimentSettings(n_instructions=60_000, seed=0))
        assert (
            result.rows["ibs-mach3"].os_fraction
            > result.rows["ibs-ultrix"].os_fraction
        )
        assert "Table 3" in result.render()


class TestTable4:
    def test_mpi_matches_paper_within_tolerance(self):
        result = table4.run(SETTINGS)
        for name, row in result.workloads.items():
            paper_mpi = table4.PAPER_WORKLOADS[name][0]
            assert row.mpi_per_100 == pytest.approx(paper_mpi, rel=0.25), name

    def test_suite_ordering(self):
        result = table4.run(SETTINGS)
        assert (
            result.averages["ibs-mach3"]
            > result.averages["ibs-ultrix"]
            > result.averages["spec92"]
        )

    def test_groff_exceeds_nroff(self):
        """The paper's C++-cost observation: groff's MPI is ~60% above
        nroff's on the same input."""
        result = table4.run(SETTINGS)
        ratio = (
            result.workloads["groff"].mpi_per_100
            / result.workloads["nroff"].mpi_per_100
        )
        assert 1.3 < ratio < 2.1

    def test_render_includes_all_workloads(self):
        text = table4.run(SETTINGS).render()
        for name in table4.PAPER_WORKLOADS:
            assert name in text


class TestTable5:
    def test_paper_values_within_tolerance(self, t5):
        for key, paper in table5.PAPER.items():
            ours = t5.cells[key]
            assert ours == pytest.approx(paper, rel=0.45), key

    def test_orderings(self, t5):
        cells = t5.cells
        # IBS far worse than SPEC on both configurations.
        assert cells[("economy", "ibs-mach3")] > 2 * cells[("economy", "spec92")]
        # High-performance memory always beats economy.
        assert (
            cells[("high-performance", "ibs-mach3")]
            < cells[("economy", "ibs-mach3")]
        )
        assert "Table 5" in t5.render()


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return table6.run(SETTINGS)

    def test_prefetch_helps_small_lines(self, result):
        assert result.cells[(16, 1)] < result.cells[(16, 0)]
        assert result.cells[(16, 3)] < result.cells[(16, 1)]

    def test_longer_lines_help_without_prefetch(self, result):
        assert result.cells[(64, 0)] < result.cells[(32, 0)] < result.cells[(16, 0)]

    def test_paper_cells_within_tolerance(self, result):
        for key, paper in table6.PAPER.items():
            assert result.cells[key] == pytest.approx(paper, rel=0.30), key

    def test_render(self, result):
        assert "Table 6" in result.render()


class TestTable7:
    @pytest.fixture(scope="class")
    def result(self):
        return table7.run(SETTINGS)

    def test_bypass_never_hurts(self, result):
        for key in result.no_bypass:
            assert result.with_bypass[key] <= result.no_bypass[key] * 1.01

    def test_bypass_gain_substantial_at_zero_prefetch(self, result):
        assert result.with_bypass[(32, 0)] < 0.92 * result.no_bypass[(32, 0)]

    def test_render(self, result):
        assert "bypass" in result.render()


class TestTable8:
    @pytest.fixture(scope="class")
    def result(self):
        return table8.run(SETTINGS)

    def test_stream_buffer_saturates(self, result):
        for bw in table8.BANDWIDTHS:
            curve = [result.cells[(bw, n)] for n in table8.BUFFER_SIZES]
            assert curve[1] < curve[0]  # 1 line already helps a lot
            gain_first = curve[0] - curve[2]  # 0 -> 3 lines
            gain_last = curve[3] - curve[5]  # 6 -> 18 lines
            assert gain_first > 3 * gain_last  # diminishing returns

    def test_wider_interface_better(self, result):
        for n in table8.BUFFER_SIZES:
            assert result.cells[(32, n)] <= result.cells[(16, n)]

    def test_reduction_magnitude_matches_paper(self, result):
        """Paper: 6-line buffer cuts CPIinstr by ~66% (16 B/cyc)."""
        reduction = 1 - result.cells[(16, 6)] / result.cells[(16, 0)]
        assert 0.35 < reduction < 0.80

    def test_render(self, result):
        assert "stream buffer" in result.render()
