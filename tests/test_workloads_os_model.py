"""Unit tests for the OS structure models."""

import pytest

from repro.trace.record import Component
from repro.workloads.ibs import IBS_WORKLOADS
from repro.workloads.os_model import (
    MACH3,
    MONOLITHIC_DENSITY,
    ULTRIX,
    os_component_inventory,
    to_ultrix,
)


class TestToUltrix:
    def test_bsd_server_disappears(self):
        ultrix = to_ultrix(IBS_WORKLOADS["mpeg_play"])
        assert Component.BSD_SERVER not in ultrix.components

    def test_fractions_renormalized(self):
        ultrix = to_ultrix(IBS_WORKLOADS["gs"])
        total = sum(c.exec_fraction for c in ultrix.components.values())
        assert total == pytest.approx(1.0)

    def test_user_absorbs_bsd_time_and_kernel_shrinks(self):
        # Table 4's redistribution: BSD-server work returns to the user
        # task (in-kernel syscalls, no IPC) and the kernel share falls.
        mach = IBS_WORKLOADS["sdet"]
        ultrix = to_ultrix(mach)
        assert (
            ultrix.components[Component.USER].exec_fraction
            > mach.components[Component.USER].exec_fraction
        )
        assert (
            ultrix.components[Component.KERNEL].exec_fraction
            < mach.components[Component.KERNEL].exec_fraction
            + mach.components[Component.BSD_SERVER].exec_fraction
        )

    def test_footprints_shrink(self):
        mach = IBS_WORKLOADS["gcc"]
        ultrix = to_ultrix(mach)
        for component, params in ultrix.components.items():
            assert params.code_kb == pytest.approx(
                mach.components[component].code_kb * MONOLITHIC_DENSITY
            )

    def test_os_name(self):
        assert to_ultrix(IBS_WORKLOADS["nroff"]).os_name == ULTRIX

    def test_rejects_non_mach_input(self):
        ultrix = to_ultrix(IBS_WORKLOADS["nroff"])
        with pytest.raises(ValueError):
            to_ultrix(ultrix)

    def test_user_share_grows(self):
        # Without the servers, the user component's share of execution
        # rises (Table 4: 62% under Mach vs 76% under Ultrix).
        mach = IBS_WORKLOADS["mpeg_play"]
        ultrix = to_ultrix(mach)
        assert (
            ultrix.components[Component.USER].exec_fraction
            > mach.components[Component.USER].exec_fraction
        )


class TestInventory:
    def test_mach_layers(self):
        inventory = os_component_inventory(MACH3)
        assert "BSD server" in inventory
        assert any("emulation" in part.lower()
                   for part in inventory["user task"])

    def test_ultrix_layers(self):
        inventory = os_component_inventory(ULTRIX)
        assert "BSD server" not in inventory
        assert "kernel" in inventory

    def test_unknown_os(self):
        with pytest.raises(ValueError):
            os_component_inventory("plan9")
