"""Unit tests for the Mach TLB cost taxonomy."""

import numpy as np
import pytest

from repro.tlb.mach_tlb import (
    KERNEL_REFILL_CYCLES,
    SERVER_REFILL_CYCLES,
    USER_REFILL_CYCLES,
    MachTlbResult,
    simulate_mach_tlb,
)
from repro.trace.record import Component, RefKind
from repro.trace.trace import Trace


def _trace(pages_components):
    addresses = np.array(
        [page * 4096 for page, _c in pages_components], dtype=np.uint64
    )
    components = np.array(
        [int(c) for _p, c in pages_components], dtype=np.uint8
    )
    kinds = np.full(len(addresses), RefKind.IFETCH, dtype=np.uint8)
    return Trace(addresses, kinds, components)


class TestMachTlbResult:
    def test_cost_taxonomy(self):
        result = MachTlbResult(
            instructions=1000,
            misses_by_class={
                Component.USER: 10,
                Component.KERNEL: 5,
                Component.BSD_SERVER: 2,
            },
        )
        expected = (
            10 * USER_REFILL_CYCLES
            + 5 * KERNEL_REFILL_CYCLES
            + 2 * SERVER_REFILL_CYCLES
        ) / 1000
        assert result.cpi == pytest.approx(expected)
        assert result.total_misses == 17

    def test_blended_comparison(self):
        result = MachTlbResult(
            instructions=1000, misses_by_class={Component.KERNEL: 10}
        )
        assert result.blended_cpi(24) == pytest.approx(0.24)
        assert result.effective_refill_cycles == pytest.approx(
            KERNEL_REFILL_CYCLES
        )

    def test_empty(self):
        result = MachTlbResult(instructions=0, misses_by_class={})
        assert result.cpi == 0.0
        assert result.effective_refill_cycles == 0.0


class TestSimulateMachTlb:
    def test_misses_attributed_to_components(self):
        # 60 kernel pages + 2 user pages fit the 64-entry TLB: after the
        # compulsory round, everything hits — misses split 60/2.
        refs = []
        for repeat in range(3):
            for page in range(60):
                refs.append((1000 + page, Component.KERNEL))
            refs.append((1, Component.USER))
            refs.append((2, Component.USER))
        result = simulate_mach_tlb(_trace(refs))
        assert result.misses_by_class[Component.KERNEL] == 60
        assert result.misses_by_class[Component.USER] == 2

    def test_thrash_evicts_everyone(self):
        # 100 distinct kernel pages cycling through a 64-entry LRU TLB
        # evict the user pages too: every reference misses.
        refs = []
        for repeat in range(3):
            refs += [(1000 + page, Component.KERNEL) for page in range(100)]
            refs += [(1, Component.USER), (2, Component.USER)]
        result = simulate_mach_tlb(_trace(refs))
        assert result.total_misses == len(refs)

    def test_server_pages_costlier(self):
        kernel_only = simulate_mach_tlb(
            _trace([(p, Component.KERNEL) for p in range(200)])
        )
        server_only = simulate_mach_tlb(
            _trace([(p, Component.BSD_SERVER) for p in range(200)])
        )
        assert kernel_only.total_misses == server_only.total_misses
        assert server_only.cpi > kernel_only.cpi

    def test_mach_trace_costlier_than_blended(self, medium_trace):
        """On an OS-heavy IBS trace, the taxonomy's effective refill
        cost exceeds the user fast path (kernel/server misses matter)."""
        result = simulate_mach_tlb(medium_trace, warmup_fraction=0.3)
        assert result.total_misses > 0
        assert result.effective_refill_cycles > USER_REFILL_CYCLES

    def test_warmup(self):
        refs = [(p, Component.USER) for p in range(100)]
        full = simulate_mach_tlb(_trace(refs))
        warm = simulate_mach_tlb(_trace(refs), warmup_fraction=0.5)
        assert warm.total_misses < full.total_misses
