"""Unit tests for time-sampled simulation."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.caches.sampling import sampled_mpi
from repro.core.metrics import measure_mpi
from repro.trace.rle import to_line_runs

GEOMETRY = CacheGeometry(8192, 32, 1)


class TestSampledMpi:
    def test_full_fraction_approaches_exact(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses(), 32)
        exact = measure_mpi(runs, GEOMETRY, warmup_fraction=0.3)
        sampled = sampled_mpi(
            runs, GEOMETRY, sample_fraction=1.0, window_instructions=30_000
        )
        assert sampled.mpi == pytest.approx(exact.mpi, rel=0.25)

    def test_small_sample_still_close(self, medium_trace):
        # Sample the steady-state region (past the footprint-discovery
        # phase), as a user of sampling would.
        addresses = medium_trace.ifetch_addresses()
        steady = addresses[int(0.3 * len(addresses)):]
        runs = to_line_runs(steady, 32)
        exact = measure_mpi(runs, GEOMETRY, warmup_fraction=0.0)
        sampled = sampled_mpi(
            runs, GEOMETRY, sample_fraction=0.15, window_instructions=25_000
        )
        assert sampled.instructions_simulated < 0.5 * len(steady)
        assert sampled.mpi == pytest.approx(exact.mpi, rel=0.35)

    def test_warm_fraction_reduces_cold_bias(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses(), 32)
        # Several windows, so the bias is averaged over the trace
        # rather than hostage to one window's local miss pattern.
        cold = sampled_mpi(
            runs, GEOMETRY, sample_fraction=0.2,
            window_instructions=10_000, warm_fraction=0.0,
        )
        corrected = sampled_mpi(
            runs, GEOMETRY, sample_fraction=0.2,
            window_instructions=10_000, warm_fraction=0.5,
        )
        # Without warm-up correction, cold-start misses inflate MPI.
        assert cold.mpi > corrected.mpi

    def test_standard_error_reported(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses(), 32)
        sampled = sampled_mpi(
            runs, GEOMETRY, sample_fraction=0.3, window_instructions=15_000
        )
        assert sampled.windows >= 2
        assert sampled.standard_error >= 0.0
        assert len(sampled.per_window_mpi) == sampled.windows

    def test_empty_stream(self):
        runs = to_line_runs(np.zeros(0, dtype=np.uint64), 32)
        sampled = sampled_mpi(runs, GEOMETRY)
        assert sampled.mpi == 0.0
        assert sampled.windows == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sample_fraction=0.0),
            dict(sample_fraction=1.5),
            dict(window_instructions=0),
            dict(warm_fraction=1.0),
        ],
    )
    def test_validation(self, medium_trace, kwargs):
        runs = to_line_runs(medium_trace.ifetch_addresses()[:1000], 32)
        with pytest.raises(ValueError):
            sampled_mpi(runs, GEOMETRY, **kwargs)

    def test_granularity_check(self, medium_trace):
        runs = to_line_runs(medium_trace.ifetch_addresses()[:1000], 64)
        with pytest.raises(ValueError):
            sampled_mpi(runs, CacheGeometry(8192, 32, 1))
