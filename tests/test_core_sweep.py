"""Unit tests for the sweep harness."""

import pytest

from repro.core.sweep import SweepResult, sweep


class TestSweep:
    def test_cartesian_product(self):
        result = sweep(
            {"a": [1, 2], "b": [10, 20]},
            lambda a, b: a + b,
        )
        assert len(result.points) == 4
        assert result.column("value") == [11, 21, 12, 22]

    def test_mapping_outputs(self):
        result = sweep(
            {"x": [1, 2]},
            lambda x: {"double": 2 * x, "square": x * x},
        )
        assert result.column("double") == [2, 4]
        assert result.column("square") == [1, 4]

    def test_value_errors_skip_points(self):
        def evaluate(x):
            if x == 2:
                raise ValueError("infeasible corner")
            return x

        result = sweep({"x": [1, 2, 3]}, evaluate)
        assert result.column("x") == [1, 3]

    def test_where(self):
        result = sweep({"a": [1, 2], "b": [3, 4]}, lambda a, b: a * b)
        sub = result.where(a=2)
        assert len(sub.points) == 2
        assert all(p["a"] == 2 for p in sub.points)

    def test_best(self):
        result = sweep({"x": [3, 1, 2]}, lambda x: x * 10)
        assert result.best("value")["x"] == 1

    def test_best_empty_raises(self):
        with pytest.raises(ValueError):
            SweepResult(axes=("x",), points=()).best("value")

    def test_axes_recorded(self):
        result = sweep({"p": [1], "q": [2]}, lambda p, q: 0)
        assert result.axes == ("p", "q")
