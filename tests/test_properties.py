"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.lru import LruSet
from repro.caches.base import CacheGeometry
from repro.caches.setassoc import SetAssociativeCache
from repro.caches.vectorized import (
    compulsory_mask,
    lru_stack_distances,
    miss_mask_direct_mapped,
    miss_mask_fully_associative,
    miss_mask_set_associative,
)
from repro.core.metrics import warmup_cut
from repro.fetch.timing import MemoryTiming
from repro.trace.rle import to_line_runs

lines_strategy = st.lists(
    st.integers(min_value=0, max_value=255), min_size=0, max_size=400
).map(lambda xs: np.array(xs, dtype=np.uint64))

addresses_strategy = st.lists(
    st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300
).map(lambda xs: np.array(xs, dtype=np.uint64) * 4)


class TestLruSetProperties:
    @given(
        st.lists(st.integers(0, 20), max_size=200),
        st.integers(min_value=1, max_value=8),
    )
    def test_size_never_exceeds_capacity(self, keys, capacity):
        lru = LruSet(capacity)
        for key in keys:
            lru.touch(key)
            assert len(lru) <= capacity

    @given(st.lists(st.integers(0, 20), max_size=200))
    def test_most_recent_always_resident(self, keys):
        lru = LruSet(3)
        for key in keys:
            lru.touch(key)
            assert key in lru


class TestVectorizedCacheProperties:
    @given(lines_strategy, st.sampled_from([16, 32, 64, 128]))
    @settings(max_examples=40)
    def test_direct_mapped_matches_sequential(self, lines, n_sets):
        vec = miss_mask_direct_mapped(lines, n_sets)
        cache = SetAssociativeCache(CacheGeometry(n_sets * 32, 32, 1))
        seq = np.array([not cache.access_line(int(l)) for l in lines], bool)
        assert np.array_equal(vec, seq)

    @given(
        lines_strategy,
        st.sampled_from([8, 16, 32]),
        st.sampled_from([2, 4]),
    )
    @settings(max_examples=40)
    def test_set_associative_matches_sequential(self, lines, n_sets, ways):
        vec = miss_mask_set_associative(lines, n_sets, ways)
        cache = SetAssociativeCache(CacheGeometry(n_sets * ways * 32, 32, ways))
        seq = np.array([not cache.access_line(int(l)) for l in lines], bool)
        assert np.array_equal(vec, seq)

    @given(lines_strategy)
    @settings(max_examples=40)
    def test_fa_capacity_monotone(self, lines):
        small = miss_mask_fully_associative(lines, 8)
        large = miss_mask_fully_associative(lines, 64)
        # Larger FA LRU caches never add misses (inclusion property).
        assert not (large & ~small).any()

    @given(lines_strategy)
    @settings(max_examples=40)
    def test_compulsory_subset_of_any_miss_mask(self, lines):
        compulsory = compulsory_mask(lines)
        misses = miss_mask_fully_associative(lines, 16)
        assert not (compulsory & ~misses).any()

    @given(lines_strategy)
    @settings(max_examples=40)
    def test_stack_distance_bounds(self, lines):
        distances = lru_stack_distances(lines)
        if len(lines) == 0:
            return
        n_distinct = len(np.unique(lines))
        assert distances.max(initial=-1) < n_distinct
        # First occurrences get -1; everything else is >= 0.
        first = compulsory_mask(lines)
        assert (distances[first] == -1).all()
        assert (distances[~first] >= 0).all()


class TestRleProperties:
    @given(addresses_strategy, st.sampled_from([16, 32, 64]))
    @settings(max_examples=40)
    def test_rle_preserves_reference_count(self, addresses, line_size):
        runs = to_line_runs(addresses, line_size)
        assert runs.total_references == len(addresses)

    @given(addresses_strategy, st.sampled_from([16, 32, 64]))
    @settings(max_examples=40)
    def test_rle_expansion_reproduces_line_sequence(self, addresses, line_size):
        runs = to_line_runs(addresses, line_size)
        expanded = np.repeat(runs.lines, runs.counts)
        shift = line_size.bit_length() - 1
        assert np.array_equal(expanded, addresses >> np.uint64(shift))

    @given(addresses_strategy)
    @settings(max_examples=40)
    def test_rle_adjacent_runs_differ(self, addresses):
        runs = to_line_runs(addresses, 32)
        if len(runs) > 1:
            assert (runs.lines[1:] != runs.lines[:-1]).all()


class TestTimingProperties:
    @given(
        st.integers(1, 100),
        st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
        st.integers(1, 512),
    )
    def test_fill_penalty_monotone_and_consistent(self, latency, bw, n_bytes):
        timing = MemoryTiming(latency, bw)
        penalty = timing.fill_penalty(n_bytes)
        assert penalty >= latency
        assert timing.fill_penalty(n_bytes + bw) == penalty + 1
        # Last byte arrives exactly at the fill penalty.
        assert timing.cycles_until_byte(n_bytes - 1) == penalty


class TestWarmupProperties:
    @given(
        st.lists(st.integers(1, 50), min_size=1, max_size=100),
        st.floats(0.0, 0.9),
    )
    @settings(max_examples=60)
    def test_warmup_covers_at_least_fraction(self, counts, fraction):
        import numpy as np

        from repro.trace.rle import LineRuns

        counts_arr = np.asarray(counts, dtype=np.int64)
        runs = LineRuns(
            lines=np.arange(len(counts), dtype=np.uint64),
            counts=counts_arr,
            first_offsets=np.zeros(len(counts), dtype=np.int64),
            line_size=32,
        )
        cut, measured = warmup_cut(runs, fraction)
        total = counts_arr.sum()
        skipped = total - measured
        assert skipped >= int(fraction * total) or cut == len(counts) - 1
        assert measured > 0
