"""Unit tests for the write-policy data-cache models."""

import pytest

from repro.caches.base import CacheGeometry
from repro.caches.writepolicy import DataCache, WritePolicy

GEOMETRY = CacheGeometry(1024, 32, 1)


class TestWriteThrough:
    def test_every_store_writes_memory(self):
        cache = DataCache(GEOMETRY, WritePolicy.WRITE_THROUGH)
        for i in range(10):
            cache.store(0x100)
        assert cache.stats.memory_writes == 10
        assert cache.stats.writebacks == 0

    def test_store_does_not_allocate(self):
        cache = DataCache(GEOMETRY, WritePolicy.WRITE_THROUGH)
        cache.store(0x100)
        assert cache.load(0x100) is False  # still a load miss

    def test_store_hits_after_load(self):
        cache = DataCache(GEOMETRY, WritePolicy.WRITE_THROUGH)
        cache.load(0x100)
        assert cache.store(0x104) is True

    def test_no_dirty_lines(self):
        cache = DataCache(GEOMETRY, WritePolicy.WRITE_THROUGH)
        cache.load(0x100)
        cache.store(0x100)
        assert cache.dirty_lines == 0


class TestWriteBack:
    def test_store_allocates_and_dirties(self):
        cache = DataCache(GEOMETRY, WritePolicy.WRITE_BACK)
        assert cache.store(0x100) is False
        assert cache.dirty_lines == 1
        assert cache.load(0x100) is True
        assert cache.stats.memory_writes == 0

    def test_dirty_eviction_writes_back(self):
        cache = DataCache(GEOMETRY, WritePolicy.WRITE_BACK)  # 32 sets
        cache.store(0)           # line 0, set 0, dirty
        cache.load(1024)         # line 32, set 0: evicts dirty line 0
        assert cache.stats.writebacks == 1
        assert cache.dirty_lines == 0

    def test_clean_eviction_is_silent(self):
        cache = DataCache(GEOMETRY, WritePolicy.WRITE_BACK)
        cache.load(0)
        cache.load(1024)
        assert cache.stats.writebacks == 0

    def test_write_traffic_comparison(self, medium_trace):
        """The classic result: write-back sends (much) less write
        traffic to memory than write-through on reusing workloads."""
        from repro.trace.record import RefKind

        geometry = CacheGeometry(65536, 32, 1)
        through = DataCache(geometry, WritePolicy.WRITE_THROUGH)
        back = DataCache(geometry, WritePolicy.WRITE_BACK)
        kinds = medium_trace.kinds
        addresses = medium_trace.addresses
        for i in range(80_000):
            kind = kinds[i]
            address = int(addresses[i])
            if kind == RefKind.LOAD:
                through.load(address)
                back.load(address)
            elif kind == RefKind.STORE:
                through.store(address)
                back.store(address)
        assert (
            back.stats.memory_write_traffic
            < 0.7 * through.stats.memory_write_traffic
        )

    def test_stats_ratios(self):
        cache = DataCache(GEOMETRY, WritePolicy.WRITE_BACK)
        cache.load(0)
        cache.load(0)
        assert cache.stats.load_miss_ratio == pytest.approx(0.5)
        empty = DataCache(GEOMETRY)
        assert empty.stats.load_miss_ratio == 0.0
