"""Unit tests for three-Cs miss classification."""

import numpy as np
import pytest

from repro.caches.classify import (
    ThreeCs,
    classify_misses,
    classify_misses_exact,
)
from repro.caches.vectorized import miss_mask_direct_mapped


def _stream(seed=0, n=4000, span=300):
    return np.random.default_rng(seed).integers(0, span, n).astype(np.uint64)


class TestThreeCsDataclass:
    def test_total(self):
        assert ThreeCs(1, 2, 3).total == 6

    def test_per_instruction(self):
        rates = ThreeCs(10, 20, 30).per_instruction(1000)
        assert rates.compulsory == pytest.approx(0.01)
        assert rates.total == pytest.approx(0.06)

    def test_per_instruction_rejects_zero(self):
        with pytest.raises(ValueError):
            ThreeCs(1, 1, 1).per_instruction(0)


class TestClassify:
    def test_components_sum_to_direct_mapped_total(self):
        lines = _stream()
        size, line = 64 * 32, 32
        breakdown = classify_misses(lines, size, line, associativity=1)
        direct = int(miss_mask_direct_mapped(lines, size // line).sum())
        # With the 8-way approximation the sum can differ from the DM
        # total only through the conflict clamp; for random streams the
        # clamp shouldn't trigger.
        assert breakdown.total == direct

    def test_pure_sequential_stream_is_all_compulsory(self):
        lines = np.arange(100, dtype=np.uint64)
        breakdown = classify_misses(lines, 256 * 32, 32)
        assert breakdown.compulsory == 100
        assert breakdown.capacity == 0
        assert breakdown.conflict == 0

    def test_conflict_detection(self):
        # Two lines aliasing in a direct-mapped cache, fitting easily in
        # 8-way: pure conflict.
        n_sets = 32
        lines = np.array([0, n_sets] * 50, dtype=np.uint64)
        breakdown = classify_misses(lines, n_sets * 32, 32, associativity=1)
        assert breakdown.compulsory == 2
        assert breakdown.conflict == 98
        assert breakdown.capacity == 0

    def test_capacity_detection(self):
        # Cycle over 64 lines in a 32-line cache: pure capacity (every
        # access misses even fully associative).
        lines = np.tile(np.arange(64, dtype=np.uint64), 20)
        breakdown = classify_misses_exact(lines, 32 * 32, 32, associativity=0)
        assert breakdown.compulsory == 64
        assert breakdown.capacity == len(lines) - 64
        assert breakdown.conflict == 0

    def test_exact_vs_eightway_close(self):
        lines = _stream(seed=5)
        approx = classify_misses(lines, 128 * 32, 32)
        exact = classify_misses_exact(lines, 128 * 32, 32)
        assert approx.compulsory == exact.compulsory
        # 8-way approximates fully-associative within a few percent on
        # random streams.
        assert approx.capacity == pytest.approx(exact.capacity, rel=0.1)

    def test_larger_cache_fewer_capacity_misses(self):
        lines = _stream(seed=9, span=600)
        small = classify_misses(lines, 64 * 32, 32)
        large = classify_misses(lines, 512 * 32, 32)
        assert large.capacity < small.capacity
