"""Unit tests for the CML conflict-avoidance simulator."""

import numpy as np
import pytest

from repro.caches.base import CacheGeometry
from repro.caches.cml import CmlConflictAvoider, CmlResult


def _lines(addresses):
    return np.asarray(addresses, dtype=np.uint64)


def _avoider(size=8192, threshold=8, entries=32):
    return CmlConflictAvoider(
        CacheGeometry(size, 32, 1),
        cml_entries=entries,
        conflict_threshold=threshold,
    )


class TestCmlConflictAvoider:
    def test_plain_hits_and_misses(self):
        cml = _avoider()
        result = cml.simulate(_lines([0, 0, 1, 1, 0]))
        assert result.accesses == 5
        # Lines 0 and 1 live in different sets: one compulsory miss
        # each, every other access hits.
        assert result.misses == 2
        assert result.conflicts_detected == 0

    def test_conflict_detection(self):
        cml = _avoider(threshold=100)  # never remap
        lines_per_cache = 8192 // 32
        a, b = 0, lines_per_cache  # same set, different pages
        result = cml.simulate(_lines([a, b] * 20))
        assert result.conflicts_detected > 0
        assert result.remaps == 0

    def test_remap_triggers_at_threshold(self):
        cml = _avoider(threshold=4)
        lines_per_cache = 8192 // 32
        result = cml.simulate(_lines([0, lines_per_cache] * 40))
        assert result.remaps >= 1

    def test_remap_resolves_two_page_conflict(self):
        # Two pages aliasing to the same color thrash until the CML
        # remaps one of them; misses must then stop.
        cml = _avoider(size=8192, threshold=4)
        lines_per_page = 4096 // 32
        # Page 0 and page 2 share color (2 colors at 8 KB).
        a = 0
        b = 2 * lines_per_page
        stream = [a, b] * 200
        result = cml.simulate(_lines(stream))
        # Far fewer misses than the 400 an unmanaged DM cache takes.
        assert result.misses < 100
        assert result.remaps >= 1

    def test_skip_excludes_warmup(self):
        cml = _avoider()
        result = cml.simulate(_lines([0, 1, 2, 3]), skip=2)
        assert result.accesses == 2
        assert result.misses == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="direct-mapped"):
            CmlConflictAvoider(CacheGeometry(8192, 32, 2))
        with pytest.raises(ValueError, match="single color"):
            CmlConflictAvoider(CacheGeometry(2048, 32, 1))

    def test_result_cpi(self):
        result = CmlResult(accesses=1000, misses=50, conflicts_detected=10,
                           remaps=2)
        assert result.miss_ratio == pytest.approx(0.05)
        cpi = result.cpi_contribution(1000, miss_penalty=10, remap_cost=500)
        assert cpi == pytest.approx((50 * 10 + 2 * 500) / 1000)
        with pytest.raises(ValueError):
            result.cpi_contribution(0, 10)
