"""Unit tests for the runner's phase-timing accounting."""

import json
import time

import pytest

from repro.runner import timing
from repro.runner.timing import CellTiming, TimingReport


@pytest.fixture(autouse=True)
def _fresh_accumulator():
    timing.reset()
    yield
    timing.reset()


class TestPhase:
    def test_accumulates(self):
        with timing.phase("simulate"):
            time.sleep(0.01)
        phases = timing.snapshot()
        assert phases["simulate"] >= 0.005

    def test_nesting_charges_innermost(self):
        with timing.phase("simulate"):
            with timing.phase("line-runs"):
                time.sleep(0.02)
        phases = timing.snapshot()
        # The sleep is charged to the inner phase, not double-counted.
        assert phases["line-runs"] >= 0.01
        assert phases["simulate"] < phases["line-runs"]

    def test_same_phase_reentrant(self):
        with timing.phase("simulate"):
            with timing.phase("simulate"):
                time.sleep(0.01)
        phases = timing.snapshot()
        assert 0.005 <= phases["simulate"] < 0.05

    def test_snapshot_reset(self):
        with timing.phase("synthesize"):
            pass
        first = timing.snapshot(reset=True)
        assert "synthesize" in first
        assert timing.snapshot() == {}

    def test_exception_still_recorded(self):
        with pytest.raises(RuntimeError):
            with timing.phase("simulate"):
                raise RuntimeError("boom")
        assert "simulate" in timing.snapshot()


class TestReport:
    def _report(self):
        cells = (
            CellTiming(key=("a", 1), wall_seconds=0.5,
                       phases={"simulate": 0.3, "synthesize": 0.1}),
            CellTiming(key=("b", 2), wall_seconds=0.25,
                       phases={"simulate": 0.2}),
        )
        return TimingReport(
            label="test", jobs=2, wall_seconds=0.8, cells=cells
        )

    def test_phase_totals(self):
        totals = self._report().phase_totals
        assert totals["simulate"] == pytest.approx(0.5)
        assert totals["synthesize"] == pytest.approx(0.1)

    def test_to_dict(self):
        record = self._report().to_dict()
        assert record["label"] == "test"
        assert record["jobs"] == 2
        assert len(record["cells"]) == 2
        assert record["cells"][0]["key"] == ["a", 1]

    def test_write_json(self, tmp_path):
        path = tmp_path / "timing.json"
        self._report().write(path)
        record = json.loads(path.read_text())
        assert record["phase_totals"]["simulate"] == pytest.approx(0.5)
