"""Unit tests for the runner's phase-timing accounting."""

import json
import threading
import time

import pytest

from repro.runner import timing
from repro.runner.timing import CellTiming, TimingReport


@pytest.fixture(autouse=True)
def _fresh_accumulator():
    timing.reset()
    yield
    timing.reset()


class TestPhase:
    def test_accumulates(self):
        with timing.phase("simulate"):
            time.sleep(0.01)
        phases = timing.snapshot()
        assert phases["simulate"] >= 0.005

    def test_nesting_charges_innermost(self):
        with timing.phase("simulate"):
            with timing.phase("line-runs"):
                time.sleep(0.02)
        phases = timing.snapshot()
        # The sleep is charged to the inner phase, not double-counted.
        assert phases["line-runs"] >= 0.01
        assert phases["simulate"] < phases["line-runs"]

    def test_same_phase_reentrant(self):
        with timing.phase("simulate"):
            with timing.phase("simulate"):
                time.sleep(0.01)
        phases = timing.snapshot()
        assert 0.005 <= phases["simulate"] < 0.05

    def test_snapshot_reset(self):
        with timing.phase("synthesize"):
            pass
        first = timing.snapshot(reset=True)
        assert "synthesize" in first
        assert timing.snapshot() == {}

    def test_exception_still_recorded(self):
        with pytest.raises(RuntimeError):
            with timing.phase("simulate"):
                raise RuntimeError("boom")
        assert "simulate" in timing.snapshot()


class TestReport:
    def _report(self):
        cells = (
            CellTiming(key=("a", 1), wall_seconds=0.5,
                       phases={"simulate": 0.3, "synthesize": 0.1}),
            CellTiming(key=("b", 2), wall_seconds=0.25,
                       phases={"simulate": 0.2}),
        )
        return TimingReport(
            label="test", jobs=2, wall_seconds=0.8, cells=cells
        )

    def test_phase_totals(self):
        totals = self._report().phase_totals
        assert totals["simulate"] == pytest.approx(0.5)
        assert totals["synthesize"] == pytest.approx(0.1)

    def test_to_dict(self):
        record = self._report().to_dict()
        assert record["label"] == "test"
        assert record["jobs"] == 2
        assert len(record["cells"]) == 2
        assert record["cells"][0]["key"] == ["a", 1]

    def test_write_json(self, tmp_path):
        path = tmp_path / "timing.json"
        self._report().write(path)
        record = json.loads(path.read_text())
        assert record["phase_totals"]["simulate"] == pytest.approx(0.5)


class TestReportRoundTrip:
    def _report(self):
        cells = (
            CellTiming(
                key=("groff", "mach3", 1), wall_seconds=0.5,
                phases={"simulate": 0.3, "synthesize": 0.1},
                dispatch={("demand", "vectorized"): 2,
                          ("victim", "reference"): 1},
            ),
            CellTiming(key=("sdet", "mach3", 2), wall_seconds=0.25,
                       phases={"simulate": 0.2}),
        )
        return TimingReport(
            label="round-trip", jobs=2, wall_seconds=0.8, cells=cells
        )

    def test_write_read_preserves_totals(self, tmp_path):
        # The --timing-out acceptance bar: a written report reloads with
        # identical phase and dispatch totals.
        report = self._report()
        path = tmp_path / "timing.json"
        report.write(path)
        loaded = TimingReport.read(path)
        assert loaded.phase_totals == pytest.approx(report.phase_totals)
        assert loaded.dispatch_totals == report.dispatch_totals

    def test_round_trip_preserves_cells(self, tmp_path):
        report = self._report()
        path = tmp_path / "timing.json"
        report.write(path)
        loaded = TimingReport.read(path)
        assert loaded.label == "round-trip"
        assert loaded.jobs == 2
        assert loaded.wall_seconds == pytest.approx(0.8)
        assert [cell.key for cell in loaded.cells] == \
            [cell.key for cell in report.cells]
        for original, reloaded in zip(report.cells, loaded.cells):
            assert reloaded.phases == pytest.approx(original.phases)
            # Per-cell dispatch survives the nest/flatten round trip.
            assert reloaded.dispatch == original.dispatch

    def test_from_dict_matches_to_dict(self):
        report = self._report()
        rebuilt = TimingReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()


class TestObserverThreadSafety:
    def test_concurrent_add_remove_while_notifying(self):
        # Mutating the observer list from one thread while another
        # notifies must neither skip-fire nor raise (the list is
        # snapshotted under a lock before fan-out).
        stop = threading.Event()
        errors = []

        def churn():
            def observer(name, seconds):
                pass
            try:
                while not stop.is_set():
                    timing.add_phase_observer(observer)
                    timing.remove_phase_observer(observer)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        seen = []
        keeper = lambda name, seconds: seen.append(name)
        timing.add_phase_observer(keeper)
        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(300):
                timing.notify_phases({"simulate": 0.001})
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            timing.remove_phase_observer(keeper)
        assert not errors
        assert len(seen) == 300
