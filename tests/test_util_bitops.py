"""Unit tests for repro._util.bitops."""

import pytest

from repro._util.bitops import align_down, align_up, ilog2, is_power_of_two


class TestIsPowerOfTwo:
    def test_powers(self):
        for k in range(0, 40):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_power_of_two(value)


class TestIlog2:
    def test_exact(self):
        for k in range(0, 40):
            assert ilog2(1 << k) == k

    @pytest.mark.parametrize("bad", [0, -4, 3, 12])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)


class TestAlign:
    def test_align_down(self):
        assert align_down(0x1234, 0x100) == 0x1200
        assert align_down(0x1200, 0x100) == 0x1200
        assert align_down(7, 4) == 4

    def test_align_up(self):
        assert align_up(0x1234, 0x100) == 0x1300
        assert align_up(0x1200, 0x100) == 0x1200
        assert align_up(1, 4) == 4

    def test_round_trip_consistency(self):
        for address in (0, 1, 31, 32, 33, 4095, 4096, 12345):
            down = align_down(address, 64)
            up = align_up(address, 64)
            assert down <= address <= up
            assert up - down in (0, 64)

    @pytest.mark.parametrize("func", [align_down, align_up])
    def test_rejects_bad_alignment(self, func):
        with pytest.raises(ValueError):
            func(100, 3)
