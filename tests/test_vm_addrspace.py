"""Unit tests for the address-space layout."""

import itertools

from repro.trace.record import Component
from repro.vm.addrspace import REGION_SPAN, AddressSpaceLayout


class TestAddressSpaceLayout:
    def test_code_regions_disjoint(self):
        layout = AddressSpaceLayout()
        regions = [
            (layout.code_base(c), layout.code_base(c) + REGION_SPAN)
            for c in Component
        ]
        for (lo1, hi1), (lo2, hi2) in itertools.combinations(regions, 2):
            assert hi1 <= lo2 or hi2 <= lo1

    def test_code_data_stack_disjoint_per_component(self):
        layout = AddressSpaceLayout()
        for component in Component:
            code = layout.code_base(component)
            data = layout.data_base(component)
            stack = layout.stack_base(component)
            assert len({code >> 28, data >> 28, stack >> 28}) == 3 or (
                abs(code - data) > REGION_SPAN // 16
            )

    def test_kernel_in_upper_half(self):
        layout = AddressSpaceLayout()
        assert layout.code_base(Component.KERNEL) >= 0x8000_0000

    def test_user_at_mips_text_base(self):
        assert AddressSpaceLayout().code_base(Component.USER) == 0x0040_0000

    def test_reverse_lookup(self):
        layout = AddressSpaceLayout()
        for component in Component:
            base = layout.code_base(component)
            assert layout.component_of_code_address(base) is component
            assert layout.component_of_code_address(base + 0x1000) is component

    def test_reverse_lookup_miss(self):
        layout = AddressSpaceLayout()
        assert layout.component_of_code_address(0xF000_0000) is None
