"""Unit tests for memory-system configurations."""

import pytest

from repro.caches.base import CacheGeometry
from repro.core.config import BASELINE_L1, MemorySystemConfig
from repro.fetch.timing import L1_L2_INTERFACE, MemoryTiming


class TestBaselines:
    def test_economy(self):
        config = MemorySystemConfig.economy()
        assert config.l1 == BASELINE_L1
        assert config.memory.latency == 30
        assert config.memory.bytes_per_cycle == 4
        assert config.l1_miss_penalty == 37  # 30 + 8 - 1

    def test_high_performance(self):
        config = MemorySystemConfig.high_performance()
        assert config.memory.latency == 12
        assert config.l1_miss_penalty == 15  # 12 + 4 - 1

    def test_baseline_l1_is_paper_reference(self):
        assert BASELINE_L1.size_bytes == 8192
        assert BASELINE_L1.line_size == 32
        assert BASELINE_L1.associativity == 1


class TestWithL2:
    def test_interface_defaults_on_chip(self):
        config = MemorySystemConfig.economy().with_l2(
            CacheGeometry(65536, 64, 8)
        )
        assert config.effective_l1_interface == L1_L2_INTERFACE
        assert config.l1_miss_penalty == 7  # 6 + 2 - 1

    def test_l2_miss_penalty_uses_memory(self):
        config = MemorySystemConfig.economy().with_l2(
            CacheGeometry(65536, 64, 8)
        )
        assert config.l2_miss_penalty == 30 + 16 - 1

    def test_no_l2_penalty_raises(self):
        with pytest.raises(ValueError):
            MemorySystemConfig.economy().l2_miss_penalty

    def test_name_records_l2(self):
        config = MemorySystemConfig.economy().with_l2(
            CacheGeometry(65536, 64, 8)
        )
        assert "64KB" in config.name


class TestDerivation:
    def test_with_l1(self):
        new_l1 = CacheGeometry(8192, 16, 1)
        config = MemorySystemConfig.economy().with_l1(new_l1)
        assert config.l1 == new_l1
        assert config.memory.latency == 30

    def test_with_l1_interface(self):
        iface = MemoryTiming(6, 32)
        config = MemorySystemConfig.economy().with_l1_interface(iface)
        assert config.effective_l1_interface == iface

    def test_describe_mentions_everything(self):
        config = MemorySystemConfig.high_performance().with_l2(
            CacheGeometry(32768, 32, 2)
        )
        text = config.describe()
        assert "L1" in text and "L2" in text and "memory" in text

    def test_frozen(self):
        config = MemorySystemConfig.economy()
        with pytest.raises(AttributeError):
            config.name = "other"
