"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.trace.record import Component, RefKind
from repro.trace.trace import Trace


def _trace(addresses, kinds=None, components=None):
    n = len(addresses)
    kinds = kinds if kinds is not None else [RefKind.IFETCH] * n
    components = components if components is not None else [Component.USER] * n
    return Trace(
        np.asarray(addresses, dtype=np.uint64),
        np.asarray(kinds, dtype=np.uint8),
        np.asarray(components, dtype=np.uint8),
    )


class TestConstruction:
    def test_columns_are_read_only(self):
        trace = _trace([0, 4, 8])
        with pytest.raises(ValueError):
            trace.addresses[0] = 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            Trace(
                np.zeros(3, np.uint64),
                np.zeros(2, np.uint8),
                np.zeros(3, np.uint8),
            )

    def test_empty(self):
        trace = Trace.empty("nothing")
        assert len(trace) == 0
        assert trace.instruction_count == 0
        assert trace.label == "nothing"

    def test_dtype_coercion(self):
        trace = Trace(
            np.array([1, 2], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            np.array([0, 0], dtype=np.int64),
        )
        assert trace.addresses.dtype == np.uint64
        assert trace.kinds.dtype == np.uint8


class TestViews:
    def test_instruction_count(self, handmade_trace):
        assert handmade_trace.instruction_count == 4

    def test_ifetch_addresses(self, handmade_trace):
        assert list(handmade_trace.ifetch_addresses()) == [
            0x1000, 0x1004, 0x1008, 0x3000,
        ]

    def test_line_addresses(self, handmade_trace):
        lines = handmade_trace.line_addresses(32)
        assert list(lines) == [
            0x1000 >> 5, 0x1004 >> 5, 0x2000 >> 5,
            0x1008 >> 5, 0x2000 >> 5, 0x3000 >> 5,
        ]

    def test_line_addresses_rejects_non_power(self, handmade_trace):
        with pytest.raises(ValueError):
            handmade_trace.line_addresses(33)

    def test_component_counts(self, handmade_trace):
        counts = handmade_trace.component_counts()
        assert counts[Component.USER] == 4
        assert counts[Component.KERNEL] == 2

    def test_slicing(self, handmade_trace):
        head = handmade_trace[:3]
        assert len(head) == 3
        assert head.instruction_count == 2

    def test_non_slice_indexing_rejected(self, handmade_trace):
        with pytest.raises(TypeError):
            handmade_trace[0]

    def test_select(self, handmade_trace):
        kernel = handmade_trace.select(
            handmade_trace.components == int(Component.KERNEL)
        )
        assert len(kernel) == 2

    def test_relabel(self, handmade_trace):
        renamed = handmade_trace.relabel("new")
        assert renamed.label == "new"
        assert np.array_equal(renamed.addresses, handmade_trace.addresses)
