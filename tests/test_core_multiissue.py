"""Unit tests for the multi-issue projection."""

import pytest

from repro.core.multiissue import IssueProjection, project_issue_widths


class TestIssueProjection:
    def test_paper_numbers(self):
        """The paper: a 0.18 CPIinstr floor is acceptable single-issue,
        considerable for dual/quad-issue (base CPI 0.50 / 0.25)."""
        single, dual, quad = project_issue_widths(0.18, (1, 2, 4))
        assert single.base_cpi == 1.0
        assert dual.base_cpi == 0.5
        assert quad.base_cpi == 0.25
        assert single.fetch_stall_fraction == pytest.approx(0.18 / 1.18)
        assert quad.fetch_stall_fraction == pytest.approx(0.18 / 0.43)
        # Quad-issue spends over 40% of its time waiting on fetch.
        assert quad.fetch_stall_fraction > 0.40

    def test_ipc_and_efficiency(self):
        projection = IssueProjection(issue_width=4, cpi_instr=0.25)
        assert projection.total_cpi == pytest.approx(0.5)
        assert projection.ipc == pytest.approx(2.0)
        assert projection.efficiency == pytest.approx(0.5)

    def test_zero_fetch_cpi_is_ideal(self):
        projection = IssueProjection(issue_width=8, cpi_instr=0.0)
        assert projection.ipc == pytest.approx(8.0)
        assert projection.efficiency == pytest.approx(1.0)

    def test_other_cpi_included(self):
        projection = IssueProjection(issue_width=2, cpi_instr=0.1,
                                     other_cpi=0.4)
        assert projection.total_cpi == pytest.approx(1.0)
        assert projection.fetch_stall_fraction == pytest.approx(0.1)

    def test_stall_share_grows_with_width(self):
        projections = project_issue_widths(0.2, (1, 2, 4, 8))
        shares = [p.fetch_stall_fraction for p in projections]
        assert shares == sorted(shares)

    def test_validation(self):
        with pytest.raises(ValueError):
            IssueProjection(issue_width=0, cpi_instr=0.1)
        with pytest.raises(ValueError):
            IssueProjection(issue_width=2, cpi_instr=-0.1)
