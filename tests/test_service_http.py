"""End-to-end tests of the simulation server over real sockets.

The acceptance bar for the serving tier: submit the same experiment
twice concurrently — both callers get identical results while the
experiment executes exactly once (single-flight coalescing) — then
restart the server over the same store directory and observe the
repeat request answered from the persistent result store, with the hit
recorded in ``/metrics``.
"""

import asyncio
import io
import json

from repro.obs import logs
from repro.obs.manifest import load_manifest
from repro.service.app import ServiceApp, start_service
from repro.service.http import request_trace_id
from repro.service.store import ResultStore

EXPERIMENT_BODY = {"experiment": "table2", "instructions": 20_000, "wait": True}


async def _request(port, method, path, body=None, extra_headers=""):
    """One HTTP exchange against localhost:port; returns (status, bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
        f"Connection: close\r\nContent-Length: {len(payload)}\r\n"
        f"{extra_headers}\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head_part, _, body_part = raw.partition(b"\r\n\r\n")
    return int(head_part.split()[1]), body_part


async def _json_request(port, method, path, body=None):
    status, raw = await _request(port, method, path, body)
    return status, json.loads(raw)


class _Server:
    """One in-process server bound to an ephemeral port."""

    def __init__(self, store_root, **app_kwargs):
        self.app = ServiceApp(store=ResultStore(store_root), **app_kwargs)
        self.server = None
        self.port = None

    async def __aenter__(self):
        self.server = await start_service(self.app, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        self.server.close()
        await self.server.wait_closed()
        self.app.close()


class TestEndToEnd:
    def test_coalescing_then_restart_hits_store(self, tmp_path):
        """The ISSUE's acceptance scenario, wire to wire."""
        store_root = tmp_path / "results"

        async def first_generation():
            async with _Server(store_root) as served:
                (s1, job1), (s2, job2) = await asyncio.gather(
                    _json_request(
                        served.port, "POST", "/v1/experiments", EXPERIMENT_BODY
                    ),
                    _json_request(
                        served.port, "POST", "/v1/experiments", EXPERIMENT_BODY
                    ),
                )
                assert s1 == 200 and s2 == 200
                # Both callers saw the same job and identical results.
                assert job1["id"] == job2["id"]
                assert job1["key"] == job2["key"]
                assert job1["result"] == job2["result"]
                assert job1["source"] == "executed"
                metrics = served.app.metrics
                assert metrics.counter_value(
                    "jobs_executed_total", {"kind": "experiment"}) == 1
                assert metrics.counter_value("jobs_coalesced_total") == 1
                _, rendering = await _request(
                    served.port, "GET", f"/v1/jobs/{job1['id']}/result"
                )
                return job1, rendering

        async def second_generation(first_job, first_rendering):
            # Fresh app + store over the same directory = cold restart.
            async with _Server(store_root) as served:
                status, job = await _json_request(
                    served.port, "POST", "/v1/experiments", EXPERIMENT_BODY
                )
                assert status == 200
                assert job["status"] == "done"
                assert job["source"] == "store"
                assert job["key"] == first_job["key"]
                _, rendering = await _request(
                    served.port, "GET", f"/v1/jobs/{job['id']}/result"
                )
                assert rendering == first_rendering
                # The hit is visible on the metrics endpoint.
                _, metrics_text = await _request(
                    served.port, "GET", "/metrics"
                )
                assert (
                    b"repro_result_store_hits_total 1" in metrics_text
                )
                assert served.app.metrics.counter_value(
                    "jobs_executed_total", {"kind": "experiment"}) == 0

        job, rendering = asyncio.run(first_generation())
        assert b"Table 2" in rendering
        asyncio.run(second_generation(job, rendering))

    def test_evaluate_and_poll(self, tmp_path):
        async def body():
            async with _Server(tmp_path / "results") as served:
                status, job = await _json_request(
                    served.port, "POST", "/v1/evaluate",
                    {"workload": "gcc", "instructions": 20_000},
                )
                assert status in (200, 202)
                job_id = job["id"]
                for _ in range(600):
                    status, job = await _json_request(
                        served.port, "GET", f"/v1/jobs/{job_id}"
                    )
                    if job["status"] in ("done", "failed"):
                        break
                    await asyncio.sleep(0.05)
                assert job["status"] == "done"
                assert job["result"]["metrics"]["cpi_instr"] > 1.0
                status, record = await _json_request(
                    served.port, "GET", f"/v1/jobs/{job_id}/result"
                )
                assert status == 200
                assert record["kind"] == "evaluate"

        asyncio.run(body())

    def test_healthz_reports_versions(self, tmp_path):
        from repro import package_version
        from repro.workloads.generator import GENERATOR_VERSION

        async def body():
            async with _Server(tmp_path / "results") as served:
                status, record = await _json_request(
                    served.port, "GET", "/healthz"
                )
                assert status == 200
                assert record["status"] == "ok"
                assert record["version"] == package_version()
                assert record["generator_version"] == GENERATOR_VERSION
                assert record["store"]["persistent"] is True
                assert record["queue_depth"] == 0

        asyncio.run(body())

    def test_results_inventory_endpoint(self, tmp_path):
        async def body():
            async with _Server(tmp_path / "results") as served:
                await _json_request(
                    served.port, "POST", "/v1/experiments", EXPERIMENT_BODY
                )
                status, record = await _json_request(
                    served.port, "GET", "/v1/results"
                )
                assert status == 200
                assert record["entry_count"] == 1
                assert record["entries"][0]["kind"] == "experiment"

        asyncio.run(body())

    def test_trace_cache_and_synthesis_observability(self, tmp_path):
        """A cold evaluate shows up as a synthesized trace-cache lookup,
        a synthesis-phase latency observation, and the cache-size gauges
        on ``/metrics``."""
        from repro.workloads.registry import clear_trace_cache

        async def body():
            async with _Server(tmp_path / "results") as served:
                clear_trace_cache()
                status, _ = await _json_request(
                    served.port, "POST", "/v1/evaluate",
                    {"workload": "gcc", "instructions": 20_000, "wait": True},
                )
                assert status == 200
                metrics = served.app.metrics
                assert metrics.counter_value(
                    "trace_cache_lookups_total", {"result": "synthesized"}
                ) >= 1
                histograms = metrics.to_dict()["histograms"]
                synthesis = [
                    series
                    for series in histograms.get("phase_seconds", [])
                    if series["labels"].get("phase") == "synthesize"
                ]
                assert synthesis and synthesis[0]["count"] >= 1
                _, text = await _request(served.port, "GET", "/metrics")
                assert b"repro_trace_cache_lookups_total" in text
                assert b"repro_trace_cache_entries" in text
                assert b"repro_line_order_cache_entries" in text
                assert b"repro_line_order_cache_bytes" in text
                assert b"repro_line_order_cache_evictions" in text
                # The evaluate's fetch simulation is dispatched to an
                # engine, and that decision is a labelled counter.
                assert b"repro_engine_dispatch_total" in text
                assert b'engine="vectorized"' in text

        asyncio.run(body())

    def test_metrics_json_format(self, tmp_path):
        async def body():
            async with _Server(tmp_path / "results") as served:
                await _request(served.port, "GET", "/healthz")
                status, record = await _json_request(
                    served.port, "GET", "/metrics?format=json"
                )
                assert status == 200
                assert "counters" in record and "gauges" in record

        asyncio.run(body())


async def _request_full(port, method, path, body=None, extra_headers=""):
    """Like ``_request`` but also returns the parsed response headers."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
        f"Connection: close\r\nContent-Length: {len(payload)}\r\n"
        f"{extra_headers}\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head_part, _, body_part = raw.partition(b"\r\n\r\n")
    lines = head_part.decode().split("\r\n")
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return int(lines[0].split()[1]), headers, body_part


class TestTraceIds:
    def test_request_trace_id_sanitization(self):
        assert request_trace_id({"x-repro-trace-id": "client-abc_123"}) == \
            "client-abc_123"
        # Malformed or oversized inbound ids are replaced, not honored.
        for bad in ("bad\nid", "a b", "x" * 200, ""):
            assigned = request_trace_id({"x-repro-trace-id": bad})
            assert assigned != bad
            assert len(assigned) == 32
        assert len(request_trace_id({})) == 32

    def test_trace_id_propagates_to_job_log_and_manifest(self, tmp_path):
        """A served request's trace id shows up on the response header,
        the job record, the structured log lines, and the job's run
        manifest (the ISSUE's serving-tier acceptance)."""
        obs_dir = tmp_path / "obs"
        stream = io.StringIO()
        logs.configure(stream)
        try:
            async def body():
                async with _Server(
                    tmp_path / "results", obs_dir=str(obs_dir)
                ) as served:
                    status, headers, raw = await _request_full(
                        served.port, "POST", "/v1/experiments",
                        EXPERIMENT_BODY,
                        extra_headers="X-Repro-Trace-Id: client-abc-123\r\n",
                    )
                    assert status == 200
                    assert headers["x-repro-trace-id"] == "client-abc-123"
                    return json.loads(raw)

            job = asyncio.run(body())
        finally:
            logs.configure(None)
        assert job["trace_id"] == "client-abc-123"
        # The scheduler wrote the job's manifest under obs_dir, keyed by
        # the same trace id, with the executed cells re-parented into it.
        manifest = load_manifest(job["manifest"])
        assert manifest["trace_id"] == "client-abc-123"
        assert manifest["cells"]
        span_ids = {span["span_id"] for span in manifest["spans"]}
        for span in manifest["spans"]:
            assert span["trace_id"] == "client-abc-123"
            if span["parent_id"] is not None:
                assert span["parent_id"] in span_ids
        # Structured log lines for the request and the job share the id.
        events = [json.loads(line) for line in
                  stream.getvalue().splitlines()]
        by_event = {record["event"]: record for record in events}
        assert by_event["http_request"]["trace_id"] == "client-abc-123"
        assert by_event["http_request"]["path"] == "/v1/experiments"
        assert by_event["job_finished"]["trace_id"] == "client-abc-123"
        assert by_event["job_finished"]["status"] == "done"

    def test_malformed_inbound_id_is_replaced(self, tmp_path):
        async def body():
            async with _Server(tmp_path / "results") as served:
                status, headers, _ = await _request_full(
                    served.port, "GET", "/healthz",
                    extra_headers="X-Repro-Trace-Id: bad id!\r\n",
                )
                assert status == 200
                assigned = headers["x-repro-trace-id"]
                assert assigned != "bad id!"
                assert len(assigned) == 32

        asyncio.run(body())

    def test_span_latency_exported_on_metrics(self, tmp_path):
        async def body():
            async with _Server(tmp_path / "results") as served:
                await _json_request(
                    served.port, "POST", "/v1/experiments", EXPERIMENT_BODY
                )
                _, text = await _request(served.port, "GET", "/metrics")
                assert b"# HELP repro_span_seconds " in text
                assert b"# TYPE repro_span_seconds histogram" in text
                assert b'repro_span_seconds_bucket{span="cell"' in text

        asyncio.run(body())


class TestErrorPaths:
    def test_errors(self, tmp_path):
        async def body():
            async with _Server(tmp_path / "results") as served:
                port = served.port
                status, record = await _json_request(port, "GET", "/nope")
                assert status == 404

                status, record = await _json_request(
                    port, "POST", "/v1/experiments", {"experiment": "table99"}
                )
                assert status == 400
                assert "unknown experiment" in record["error"]

                status, record = await _json_request(
                    port, "POST", "/v1/evaluate", {"workload": "zzz"}
                )
                assert status == 400

                status, record = await _json_request(
                    port, "POST", "/v1/evaluate",
                    {"workload": "gcc", "config": "turbo"},
                )
                assert status == 400
                assert "unknown config" in record["error"]

                status, record = await _json_request(
                    port, "POST", "/v1/experiments",
                    {"experiment": "table2", "instructions": -5},
                )
                assert status == 400

                status, record = await _json_request(
                    port, "GET", "/v1/jobs/not-a-job"
                )
                assert status == 404

                # Malformed JSON body.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    b"POST /v1/experiments HTTP/1.1\r\nHost: x\r\n"
                    b"Connection: close\r\nContent-Length: 5\r\n\r\n{oops"
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert b" 400 " in raw.split(b"\r\n", 1)[0]

        asyncio.run(body())

    def test_keep_alive_serves_two_requests(self, tmp_path):
        async def body():
            async with _Server(tmp_path / "results") as served:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", served.port
                )
                one = (
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 0\r\n\r\n"
                )
                writer.write(one + one)
                await writer.drain()
                # Two complete responses arrive on the one connection.
                data = b""
                while data.count(b'"status": "ok"') < 2:
                    chunk = await asyncio.wait_for(reader.read(4096), 5)
                    if not chunk:
                        break
                    data += chunk
                assert data.count(b'"status": "ok"') == 2
                writer.close()

        asyncio.run(body())
