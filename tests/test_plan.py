"""Tests for the sweep-plan IR: compile, dedup, priming, execution.

The load-bearing invariants:

* **Byte equality** — every experiment executed through its compiled
  plan renders exactly what ``module.run(settings)`` renders.
* **Dedup soundness** — identical cells across experiments run once,
  and results fan back to every requester unchanged.
* **Full priming** — the executor primes every declared shared input
  exactly once (``inputs_primed == inputs_total``), and annotations
  only warm memos, never change arithmetic.
"""

import types

import pytest

from repro.experiments import figure3, table3, table4, table5
from repro.experiments.common import ExperimentSettings, fetch_point
from repro.plan import inputs as plan_inputs
from repro.plan.compile import compile_module, compile_report, has_plan
from repro.plan.executor import (
    add_plan_observer,
    execute_cells,
    remove_plan_observer,
    run_experiment,
    run_report,
)
from repro.plan.ir import (
    MaskFamily,
    PlanCell,
    TraceKey,
    collect_inputs,
    dedup_cells,
)
from repro.runner.timing import TimingReport
from repro.workloads.registry import set_trace_cache_backend

SETTINGS = ExperimentSettings(n_instructions=20_000, seed=3)


@pytest.fixture(autouse=True)
def _no_disk_cache():
    from repro.workloads import registry

    saved = registry._disk_cache
    set_trace_cache_backend(None)
    yield
    registry._disk_cache = saved


def _double(x):
    return 2 * x


def _key(workload="groff", os_name="mach3"):
    return TraceKey(
        workload=workload,
        os_name=os_name,
        n_instructions=SETTINGS.n_instructions,
        seed=SETTINGS.seed,
    )


class TestCompile:
    def test_native_plan_module(self):
        compiled = compile_module(table5, SETTINGS)
        assert compiled.name == "table5"
        assert len(compiled.cells) == len(table5.plan_cells(SETTINGS))
        # Keys are namespaced by experiment name.
        assert all(cell.key[0] == "table5" for cell in compiled.cells)
        # Annotations survive the namespacing pass.
        assert any(cell.traces for cell in compiled.cells)
        assert any(cell.masks for cell in compiled.cells)

    def test_fallback_module_without_cells(self):
        module = types.ModuleType("fake_experiment")
        module.run = _double
        compiled = compile_module(module, SETTINGS, name="fake")
        assert len(compiled.cells) == 1
        cell = compiled.cells[0]
        assert cell.key == ("fake",)
        assert cell.fn is module.run
        assert cell.args == (SETTINGS,)
        assert compiled.merge is None

    def test_every_shipped_experiment_has_a_plan(self):
        from repro import experiments

        for name, module in experiments.ALL_EXPERIMENTS.items():
            assert has_plan(module), name

    def test_compile_report_concatenates(self):
        plan = compile_report(
            {"table5": table5, "table4": table4}, SETTINGS
        )
        assert plan.cells_total == len(table5.plan_cells(SETTINGS)) + len(
            table4.plan_cells(SETTINGS)
        )
        names = [experiment.name for experiment in plan.experiments]
        assert names == ["table5", "table4"]


class TestDedup:
    def test_identical_cells_collapse(self):
        cells = [
            PlanCell(key=("a", i), fn=_double, args=(7,)) for i in range(3)
        ] + [PlanCell(key=("b",), fn=_double, args=(8,))]
        unique, index_map = dedup_cells(cells)
        assert len(unique) == 2
        assert index_map == [0, 0, 0, 1]

    def test_key_is_not_part_of_identity(self):
        a = PlanCell(key=("x",), fn=_double, args=(1,))
        b = PlanCell(key=("y",), fn=_double, args=(1,))
        assert a.identity() == b.identity()

    def test_unhashable_args_never_dedup(self):
        cells = [
            PlanCell(key=("a",), fn=_double, args=([1],)),
            PlanCell(key=("b",), fn=_double, args=([1],)),
        ]
        unique, index_map = dedup_cells(cells)
        assert len(unique) == 2
        assert index_map == [0, 1]

    def test_cross_experiment_dedup(self):
        # The same module compiled twice in one report plan: every cell
        # of the second copy is identical work.
        plan = compile_report({"a": table5, "b": table5}, SETTINGS)
        unique, index_map = plan.unique_cells()
        assert plan.cells_total == 2 * len(unique)
        half = len(unique)
        assert index_map[half:] == index_map[:half]


class TestCollectInputs:
    def test_demand_counts_and_union(self):
        family = MaskFamily(
            encode_line_size=32, mask_line_size=32, shapes=((64, 2),)
        )
        wider = MaskFamily(
            encode_line_size=32, mask_line_size=32, shapes=((64, 4),)
        )
        cells = [
            PlanCell(key=("a",), fn=_double, traces=(_key(),),
                     masks=(family,)),
            PlanCell(key=("b",), fn=_double, traces=(_key(),),
                     masks=(wider,)),
            PlanCell(key=("c",), fn=_double,
                     traces=(_key("sdet"),), streams=(16,)),
        ]
        inputs = collect_inputs(cells)
        assert inputs.traces == {_key(): 2, _key("sdet"): 1}
        # Mask families imply their encode stream; shapes union per
        # (trace, encode, mask) stream.
        assert inputs.streams == {(_key(), 32): 2, (_key("sdet"), 16): 1}
        shapes, count = inputs.masks[(_key(), 32, 32)]
        assert shapes == {(64, 2), (64, 4)}
        assert count == 2
        # 2 traces + 2 streams + 1 mask family.
        assert inputs.total == 5
        assert inputs.shared == 3  # groff trace, its stream, its masks

    def test_stream_sizes_include_mask_implied(self):
        cell = PlanCell(
            key=("a",), fn=_double, streams=(16,),
            masks=(MaskFamily(32, 128, ((64, 2),)),),
        )
        assert cell.stream_sizes == (16, 32)


class TestExecuteCells:
    def test_results_align_with_dedup(self):
        cells = [
            PlanCell(key=("x", i), fn=_double, args=(i % 2,))
            for i in range(4)
        ]
        results, report = execute_cells(cells, jobs=1, label="unit")
        assert results == [0, 2, 0, 2]
        assert report.plan["cells_total"] == 4
        assert report.plan["cells_unique"] == 2
        assert len(report.cells) == 2  # timing is per unique cell

    def test_primes_every_declared_input(self):
        cells = [
            PlanCell(
                key=("p", i), fn=_double, args=(i,),
                traces=(_key(),), streams=(32,),
                masks=(MaskFamily(32, 32, ((64, 2),)),),
            )
            for i in range(2)
        ]
        results, report = execute_cells(cells, jobs=1, label="unit")
        assert results == [0, 2]
        stats = report.plan
        assert stats["inputs_total"] == 3  # trace + stream + mask family
        assert stats["inputs_shared"] == 3  # all demanded by both cells
        assert stats["inputs_primed"] == stats["inputs_total"]
        assert stats["prime_seconds"] > 0.0
        # Priming synthesized the trace in the parent; the work shows
        # up in the plan's phase block and in phase_totals.
        assert stats["prime_phases"].get("synthesize", 0.0) > 0.0
        assert report.phase_totals.get("synthesize", 0.0) > 0.0

    def test_order_cache_capacity_restored(self):
        from repro.caches.vectorized import order_cache_stats

        before = order_cache_stats()["max_entries"]
        cells = [
            PlanCell(
                key=("s", size), fn=_double, args=(size,),
                traces=(_key(),), streams=(size,),
            )
            for size in (16, 32, 64, 128)
        ]
        execute_cells(cells, jobs=1, label="unit")
        assert order_cache_stats()["max_entries"] == before

    def test_observer_add_remove(self):
        seen = []
        add_plan_observer(seen.append)
        try:
            execute_cells(
                [PlanCell(key=("o",), fn=_double, args=(1,))],
                jobs=1, label="observed",
            )
        finally:
            remove_plan_observer(seen.append)
        assert len(seen) == 1
        assert seen[0]["label"] == "observed"
        assert seen[0]["cells_total"] == 1
        execute_cells(
            [PlanCell(key=("o",), fn=_double, args=(1,))], jobs=1
        )
        assert len(seen) == 1  # removed observers stay silent


class TestGoldenEquivalence:
    """Plan-executed output must be byte-identical to the legacy path.

    A representative slice here (decomposed sweeps with masks, a
    table with per-workload cells, a run_cell fallback module); the
    full 29-module sweep holds by the same mechanism and is gated by
    ``benchmarks/bench_report.py`` in CI.
    """

    @pytest.mark.parametrize("module", [table5, table4, figure3, table3])
    def test_experiment_byte_identical(self, module):
        legacy = module.run(SETTINGS).render()
        result, report = run_experiment(module, SETTINGS, jobs=1)
        assert result.render() == legacy
        assert report.plan["inputs_primed"] == report.plan["inputs_total"]

    def test_report_byte_identical(self):
        from repro.runner.pool import run_report_legacy

        modules = {"table5": table5, "table4": table4}
        legacy, _ = run_report_legacy(modules, SETTINGS, jobs=1)
        planned, report = run_report(modules, SETTINGS, jobs=1)
        assert planned == legacy
        # The report plan shares trace/stream/mask inputs across the
        # two experiments.
        assert report.plan["inputs_shared"] > 0


class TestTimingReportPlan:
    def test_plan_block_round_trips(self):
        report = TimingReport(
            label="x", jobs=1, wall_seconds=1.0, cells=(),
            plan={
                "cells_total": 3,
                "inputs_primed": 2,
                "prime_phases": {"synthesize": 0.5},
            },
        )
        clone = TimingReport.from_dict(report.to_dict())
        assert clone.plan == report.plan
        assert clone.phase_totals == {"synthesize": 0.5}

    def test_no_plan_block_for_raw_pool_runs(self):
        report = TimingReport(
            label="x", jobs=1, wall_seconds=1.0, cells=()
        )
        assert "plan" not in report.to_dict()
        assert TimingReport.from_dict(report.to_dict()).plan is None


class TestSchedulerGroupCells:
    def test_group_cells_annotated(self):
        from repro.service.scheduler import (
            EvaluateRequest,
            evaluate_group_cells,
        )

        requests = [
            EvaluateRequest(
                workload="groff", os_name="mach3",
                config_name="economy", mechanism="demand",
                settings=SETTINGS,
            ),
            EvaluateRequest(
                workload="groff", os_name="mach3",
                config_name="high-performance", mechanism="demand",
                settings=SETTINGS,
            ),
            EvaluateRequest(
                workload="sdet", os_name="mach3",
                config_name="economy", mechanism="demand",
                settings=SETTINGS,
            ),
        ]
        groups, cells = evaluate_group_cells(requests)
        assert list(groups.values()) == [[0, 1], [2]]
        assert len(cells) == 2
        first = cells[0]
        assert first.key == ("groff", "mach3", SETTINGS.engine)
        assert first.traces == plan_inputs.workload_trace_keys(
            [("groff", "mach3")], SETTINGS
        )
        # Both configs' points contribute streams and demand-mask
        # geometries to the one cell.
        assert first.streams
        assert first.masks

    def test_group_cell_masks_match_point_derivation(self):
        from repro.service.scheduler import (
            EvaluateRequest,
            _named_config,
            evaluate_group_cells,
        )

        request = EvaluateRequest(
            workload="groff", os_name="mach3",
            config_name="economy", mechanism="demand",
            settings=SETTINGS,
        )
        _, cells = evaluate_group_cells([request])
        point = fetch_point(
            ("economy", "demand"), _named_config("economy"), "demand"
        )
        assert cells[0].masks == plan_inputs.mask_families(
            [point], SETTINGS.engine
        )
