"""Unit tests for the Mulder-style area model."""

import pytest

from repro.caches.base import CacheGeometry
from repro.core.area import (
    area_per_byte,
    cache_area_rbe,
    fits_budget,
    tag_bits,
)


class TestTagBits:
    def test_widths(self):
        # 8 KB DM, 32 B lines: 5 offset + 8 index -> 19 tag bits.
        assert tag_bits(CacheGeometry(8192, 32, 1)) == 19
        # Fully associative: no index bits.
        assert tag_bits(CacheGeometry(1024, 32, 0)) == 27


class TestCacheArea:
    def test_paper_quoted_line_size_saving(self):
        """The paper: 'The Mulder area model predicts a 10% reduction in
        area when moving from a 16-byte to a 64-byte line (8-KB,
        direct-mapped cache)'."""
        a16 = cache_area_rbe(CacheGeometry(8192, 16, 1))
        a64 = cache_area_rbe(CacheGeometry(8192, 64, 1))
        saving = 1 - a64 / a16
        assert saving == pytest.approx(0.10, abs=0.02)

    def test_area_grows_with_size(self):
        areas = [
            cache_area_rbe(CacheGeometry(size, 32, 1))
            for size in (4096, 8192, 16384, 65536)
        ]
        assert areas == sorted(areas)

    def test_associativity_costs_area(self):
        dm = cache_area_rbe(CacheGeometry(8192, 32, 1))
        eight = cache_area_rbe(CacheGeometry(8192, 32, 8))
        assert eight > dm

    def test_longer_lines_cheaper_per_byte(self):
        short = area_per_byte(CacheGeometry(8192, 16, 1))
        long_ = area_per_byte(CacheGeometry(8192, 128, 1))
        assert long_ < short

    def test_data_dominates_large_caches(self):
        # Per-byte cost approaches the raw SRAM cost as caches grow.
        from repro.core.area import SRAM_BIT_RBE

        big = area_per_byte(CacheGeometry(1 << 20, 64, 1))
        assert big == pytest.approx(8 * SRAM_BIT_RBE, rel=0.15)


class TestFitsBudget:
    def test_fits(self):
        l1 = CacheGeometry(8192, 32, 1)
        l2 = CacheGeometry(65536, 64, 8)
        total = cache_area_rbe(l1) + cache_area_rbe(l2)
        assert fits_budget([l1, l2], total + 1)
        assert not fits_budget([l1, l2], total - 1)
