"""Unit tests for trace filters and combinators."""

import numpy as np
import pytest

from repro.trace.filters import (
    by_component,
    by_kind,
    concat,
    data_only,
    head,
    ifetch_only,
)
from repro.trace.record import Component, RefKind
from repro.trace.trace import Trace


class TestKindFilters:
    def test_ifetch_only(self, handmade_trace):
        filtered = ifetch_only(handmade_trace)
        assert len(filtered) == 4
        assert (filtered.kinds == RefKind.IFETCH).all()

    def test_data_only(self, handmade_trace):
        filtered = data_only(handmade_trace)
        assert len(filtered) == 2
        assert set(filtered.kinds.tolist()) == {RefKind.LOAD, RefKind.STORE}

    def test_by_kind_store(self, handmade_trace):
        stores = by_kind(handmade_trace, RefKind.STORE)
        assert len(stores) == 1
        assert stores.addresses[0] == 0x2000

    def test_order_preserved(self, handmade_trace):
        filtered = ifetch_only(handmade_trace)
        assert list(filtered.addresses) == sorted(
            filtered.addresses.tolist(),
            key=lambda a: list(handmade_trace.addresses).index(a),
        )


class TestComponentFilter:
    def test_by_component(self, handmade_trace):
        kernel = by_component(handmade_trace, Component.KERNEL)
        assert len(kernel) == 2
        assert (kernel.components == Component.KERNEL).all()


class TestConcat:
    def test_concat_two(self, handmade_trace):
        both = concat([handmade_trace, handmade_trace])
        assert len(both) == 2 * len(handmade_trace)
        assert both.instruction_count == 2 * handmade_trace.instruction_count

    def test_concat_empty_list(self):
        assert len(concat([], label="x")) == 0

    def test_concat_label(self, handmade_trace):
        assert concat([handmade_trace], label="multi").label == "multi"
        assert concat([handmade_trace]).label == handmade_trace.label


class TestHead:
    def test_head(self, handmade_trace):
        assert len(head(handmade_trace, 2)) == 2

    def test_head_longer_than_trace(self, handmade_trace):
        assert len(head(handmade_trace, 100)) == len(handmade_trace)

    def test_head_negative(self, handmade_trace):
        with pytest.raises(ValueError):
            head(handmade_trace, -1)


class TestInterleave:
    def test_round_robin_order(self, handmade_trace):
        from repro.trace.filters import interleave

        a = handmade_trace.relabel("a")
        b = handmade_trace.relabel("b")
        merged = interleave([a, b], quantum=2, label="mix")
        assert len(merged) == 2 * len(handmade_trace)
        assert merged.label == "mix"
        # First quantum of a, then first quantum of b.
        assert list(merged.addresses[:2]) == list(a.addresses[:2])
        assert list(merged.addresses[2:4]) == list(b.addresses[:2])

    def test_unequal_lengths(self, handmade_trace):
        from repro.trace.filters import interleave

        short = handmade_trace[:2]
        merged = interleave([handmade_trace, short], quantum=3)
        assert len(merged) == len(handmade_trace) + 2

    def test_quantum_larger_than_traces(self, handmade_trace):
        from repro.trace.filters import interleave

        merged = interleave([handmade_trace, handmade_trace], quantum=10**6)
        assert len(merged) == 2 * len(handmade_trace)

    def test_empty_list(self):
        from repro.trace.filters import interleave

        assert len(interleave([], quantum=10)) == 0

    def test_rejects_bad_quantum(self, handmade_trace):
        import pytest

        from repro.trace.filters import interleave

        with pytest.raises(ValueError):
            interleave([handmade_trace], quantum=0)
