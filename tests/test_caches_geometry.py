"""Unit tests for cache geometry and statistics."""

import pytest

from repro.caches.base import CacheGeometry, CacheStats


class TestCacheGeometry:
    def test_derived_quantities(self):
        geo = CacheGeometry(8192, 32, 2)
        assert geo.n_lines == 256
        assert geo.ways == 2
        assert geo.n_sets == 128
        assert geo.offset_bits == 5
        assert geo.index_bits == 7

    def test_fully_associative(self):
        geo = CacheGeometry(1024, 32, 0)
        assert geo.ways == 32
        assert geo.n_sets == 1

    def test_direct_mapped(self):
        geo = CacheGeometry(1024, 32, 1)
        assert geo.n_sets == 32

    def test_line_and_set_extraction(self):
        geo = CacheGeometry(8192, 32, 1)
        address = 0x0001_2345
        assert geo.line_number(address) == address >> 5
        assert geo.set_index(address) == (address >> 5) & 255

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=1000, line_size=32),
            dict(size_bytes=1024, line_size=33),
            dict(size_bytes=1024, line_size=2048),
            dict(size_bytes=1024, line_size=32, associativity=-1),
            dict(size_bytes=1024, line_size=32, associativity=64),
        ],
    )
    def test_invalid_geometries(self, kwargs):
        with pytest.raises(ValueError):
            CacheGeometry(**kwargs)

    def test_describe(self):
        assert CacheGeometry(8192, 32, 1).describe() == "8KB/32B/direct-mapped"
        assert CacheGeometry(65536, 64, 8).describe() == "64KB/64B/8-way"
        assert "fully-assoc" in CacheGeometry(1024, 32, 0).describe()


class TestCacheStats:
    def test_ratios(self):
        stats = CacheStats(accesses=100, misses=25)
        assert stats.hits == 75
        assert stats.miss_ratio == 0.25

    def test_empty_ratio(self):
        assert CacheStats().miss_ratio == 0.0

    def test_merge(self):
        a = CacheStats(10, 2, 1)
        b = CacheStats(20, 3, 2)
        merged = a.merge(b)
        assert (merged.accesses, merged.misses, merged.evictions) == (30, 5, 3)

    def test_reset(self):
        stats = CacheStats(5, 4, 3)
        stats.reset()
        assert stats.accesses == stats.misses == stats.evictions == 0
