"""Cold/warm benchmark of the trace cache and sweep runner.

Runs one experiment twice against a fresh cache directory — a cold run
that synthesizes every trace, then a warm run that memory-maps them
back — and writes both timing reports plus the speedup as JSON.

Run from the repository root:

    python tools/bench_smoke.py [--experiment table5] [--instructions N]
                                [--jobs N] [--cache-dir DIR] [--out FILE]
                                [--obs-dir DIR]

With ``--obs-dir`` the whole benchmark runs traced: a run manifest and
its Perfetto-loadable chrome-trace export land in the directory, and
the output record's ``obs`` section links them (so a BENCH entry can be
joined to its full span timeline by trace id).

With no ``--cache-dir`` a temporary directory is used and removed
afterwards.  The interesting fields of the output: the cold run's
``phase_totals.synthesize`` is the cost the cache amortizes, and the
warm run's must be (near) zero.

The record also carries a ``fetch`` section timing a reduced Figure 6
sweep on the reference engines vs the vectorized stall-accounting
kernels (both over the already-warm traces); the full-scale version of
that comparison lives in ``benchmarks/bench_fetch.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from contextlib import contextmanager

from repro.experiments import ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS, figure6
from repro.experiments.common import ExperimentSettings
from repro.obs import tracing
from repro.obs.export import to_chrome_trace
from repro.obs.manifest import build_manifest, write_manifest
from repro.runner.cache import TraceDiskCache
from repro.runner.pool import run_experiment
from repro.workloads.registry import clear_trace_cache, set_trace_cache_backend

#: Reduced Figure 6 grid for the engine comparison (9 of 35 points).
FETCH_BANDWIDTHS = (4, 16, 64)
FETCH_LINE_SIZES = (16, 32, 64)


def bench_fetch(n_instructions: int, seed: int = 0) -> dict:
    """Reference-vs-vectorized timing of a reduced Figure 6 sweep."""

    def timed(engine: str):
        settings = ExperimentSettings(
            n_instructions=n_instructions, seed=seed, engine=engine
        )
        start = time.perf_counter()
        result = figure6.run(
            settings,
            bandwidths=FETCH_BANDWIDTHS,
            line_sizes=FETCH_LINE_SIZES,
        )
        return result, time.perf_counter() - start

    reference, reference_seconds = timed("reference")
    vectorized, vectorized_seconds = timed("vectorized")
    return {
        "points": len(FETCH_BANDWIDTHS) * len(FETCH_LINE_SIZES),
        "reference_seconds": reference_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": (
            reference_seconds / vectorized_seconds
            if vectorized_seconds > 0
            else None
        ),
        "renders_identical": reference.render() == vectorized.render(),
    }


def bench(
    experiment: str = "table5",
    n_instructions: int = 100_000,
    jobs: int = 1,
    cache_dir: str | None = None,
    obs_dir: str | None = None,
) -> dict:
    """Cold-then-warm timing of one experiment; returns the JSON record."""
    registry = {**ALL_EXPERIMENTS, **EXTENSION_EXPERIMENTS}
    module = registry[experiment]
    settings = ExperimentSettings(n_instructions=n_instructions, seed=0)

    scratch = None
    if cache_dir is None:
        scratch = tempfile.mkdtemp(prefix="repro-bench-")
        cache_dir = scratch
    backend = TraceDiskCache(cache_dir)
    set_trace_cache_backend(backend)
    try:
        with tracing.run(
            "bench-smoke", command="bench_smoke", experiment=experiment
        ) if obs_dir else _untraced() as recorder:
            clear_trace_cache()
            with tracing.span("cold"):
                cold_result, cold = run_experiment(
                    module, settings, jobs=jobs, label=experiment
                )
            clear_trace_cache()  # warm = fresh process, populated disk
            with tracing.span("warm"):
                warm_result, warm = run_experiment(
                    module, settings, jobs=jobs, label=experiment
                )
            if cold_result.render() != warm_result.render():
                raise AssertionError(
                    "warm rerun changed the experiment output"
                )
            with tracing.span("fetch-compare"):
                fetch = bench_fetch(n_instructions)
        record = {
            "fetch": fetch,
            "experiment": experiment,
            "n_instructions": n_instructions,
            "jobs": cold.jobs,
            "cache_dir": backend.root,
            "cache_entries": len(backend.entries()),
            "cache_bytes": backend.total_bytes(),
            "cold": cold.to_dict(),
            "warm": warm.to_dict(),
            "speedup": (
                cold.wall_seconds / warm.wall_seconds
                if warm.wall_seconds > 0
                else None
            ),
        }
        if obs_dir and recorder is not None:
            record["obs"] = _write_obs(recorder, obs_dir, record)
        return record
    finally:
        set_trace_cache_backend(None)
        clear_trace_cache()
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


@contextmanager
def _untraced():
    """Stand-in for :func:`repro.obs.tracing.run` when tracing is off."""
    yield None


def _write_obs(recorder, obs_dir: str, record: dict) -> dict:
    """Write the manifest + chrome-trace export; return their paths."""
    manifest = build_manifest(
        recorder,
        extra={
            "command": "bench_smoke",
            "experiment": record["experiment"],
            "n_instructions": record["n_instructions"],
            "jobs": record["jobs"],
            "speedup": record["speedup"],
        },
    )
    manifest_path = write_manifest(manifest, obs_dir)
    trace_path = os.path.join(
        obs_dir, f"chrome-trace-{manifest['trace_id'][:12]}.json"
    )
    with open(trace_path, "w") as handle:
        json.dump(to_chrome_trace(manifest), handle)
        handle.write("\n")
    return {
        "trace_id": manifest["trace_id"],
        "manifest": manifest_path,
        "chrome_trace": trace_path,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="table5")
    parser.add_argument("--instructions", type=int, default=100_000)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir")
    parser.add_argument("--out", default="bench_smoke.json")
    parser.add_argument(
        "--obs-dir",
        help="trace the benchmark; write manifest + chrome-trace here",
    )
    args = parser.parse_args()

    record = bench(
        args.experiment, args.instructions, args.jobs, args.cache_dir,
        obs_dir=args.obs_dir,
    )
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    cold = record["cold"]["phase_totals"]
    warm = record["warm"]["phase_totals"]
    print(
        f"cold: {record['cold']['wall_seconds']:.2f}s "
        f"(synthesize {cold.get('synthesize', 0.0):.2f}s)"
    )
    print(
        f"warm: {record['warm']['wall_seconds']:.2f}s "
        f"(synthesize {warm.get('synthesize', 0.0):.2f}s, "
        f"trace-load {warm.get('trace-load', 0.0):.2f}s)"
    )
    fetch = record["fetch"]
    print(
        f"fetch engines: reference {fetch['reference_seconds']:.2f}s, "
        f"vectorized {fetch['vectorized_seconds']:.2f}s "
        f"({fetch['speedup']:.1f}x, renders "
        f"{'identical' if fetch['renders_identical'] else 'DIVERGED'})"
    )
    if "obs" in record:
        print(
            f"trace {record['obs']['trace_id']}: "
            f"manifest {record['obs']['manifest']}, "
            f"chrome trace {record['obs']['chrome_trace']}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
