"""Cold/warm benchmark of the trace cache and sweep runner.

Runs one experiment twice against a fresh cache directory — a cold run
that synthesizes every trace, then a warm run that memory-maps them
back — and writes both timing reports plus the speedup as JSON.

Run from the repository root:

    python tools/bench_smoke.py [--experiment table5] [--instructions N]
                                [--jobs N] [--cache-dir DIR] [--out FILE]

With no ``--cache-dir`` a temporary directory is used and removed
afterwards.  The interesting fields of the output: the cold run's
``phase_totals.synthesize`` is the cost the cache amortizes, and the
warm run's must be (near) zero.

The record also carries a ``fetch`` section timing a reduced Figure 6
sweep on the reference engines vs the vectorized stall-accounting
kernels (both over the already-warm traces); the full-scale version of
that comparison lives in ``benchmarks/bench_fetch.py``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time

from repro.experiments import ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS, figure6
from repro.experiments.common import ExperimentSettings
from repro.runner.cache import TraceDiskCache
from repro.runner.pool import run_experiment
from repro.workloads.registry import clear_trace_cache, set_trace_cache_backend

#: Reduced Figure 6 grid for the engine comparison (9 of 35 points).
FETCH_BANDWIDTHS = (4, 16, 64)
FETCH_LINE_SIZES = (16, 32, 64)


def bench_fetch(n_instructions: int, seed: int = 0) -> dict:
    """Reference-vs-vectorized timing of a reduced Figure 6 sweep."""

    def timed(engine: str):
        settings = ExperimentSettings(
            n_instructions=n_instructions, seed=seed, engine=engine
        )
        start = time.perf_counter()
        result = figure6.run(
            settings,
            bandwidths=FETCH_BANDWIDTHS,
            line_sizes=FETCH_LINE_SIZES,
        )
        return result, time.perf_counter() - start

    reference, reference_seconds = timed("reference")
    vectorized, vectorized_seconds = timed("vectorized")
    return {
        "points": len(FETCH_BANDWIDTHS) * len(FETCH_LINE_SIZES),
        "reference_seconds": reference_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": (
            reference_seconds / vectorized_seconds
            if vectorized_seconds > 0
            else None
        ),
        "renders_identical": reference.render() == vectorized.render(),
    }


def bench(
    experiment: str = "table5",
    n_instructions: int = 100_000,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> dict:
    """Cold-then-warm timing of one experiment; returns the JSON record."""
    registry = {**ALL_EXPERIMENTS, **EXTENSION_EXPERIMENTS}
    module = registry[experiment]
    settings = ExperimentSettings(n_instructions=n_instructions, seed=0)

    scratch = None
    if cache_dir is None:
        scratch = tempfile.mkdtemp(prefix="repro-bench-")
        cache_dir = scratch
    backend = TraceDiskCache(cache_dir)
    set_trace_cache_backend(backend)
    try:
        clear_trace_cache()
        cold_result, cold = run_experiment(
            module, settings, jobs=jobs, label=experiment
        )
        clear_trace_cache()  # warm = fresh process, populated disk
        warm_result, warm = run_experiment(
            module, settings, jobs=jobs, label=experiment
        )
        if cold_result.render() != warm_result.render():
            raise AssertionError("warm rerun changed the experiment output")
        fetch = bench_fetch(n_instructions)
        return {
            "fetch": fetch,
            "experiment": experiment,
            "n_instructions": n_instructions,
            "jobs": cold.jobs,
            "cache_dir": backend.root,
            "cache_entries": len(backend.entries()),
            "cache_bytes": backend.total_bytes(),
            "cold": cold.to_dict(),
            "warm": warm.to_dict(),
            "speedup": (
                cold.wall_seconds / warm.wall_seconds
                if warm.wall_seconds > 0
                else None
            ),
        }
    finally:
        set_trace_cache_backend(None)
        clear_trace_cache()
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="table5")
    parser.add_argument("--instructions", type=int, default=100_000)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir")
    parser.add_argument("--out", default="bench_smoke.json")
    args = parser.parse_args()

    record = bench(
        args.experiment, args.instructions, args.jobs, args.cache_dir
    )
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    cold = record["cold"]["phase_totals"]
    warm = record["warm"]["phase_totals"]
    print(
        f"cold: {record['cold']['wall_seconds']:.2f}s "
        f"(synthesize {cold.get('synthesize', 0.0):.2f}s)"
    )
    print(
        f"warm: {record['warm']['wall_seconds']:.2f}s "
        f"(synthesize {warm.get('synthesize', 0.0):.2f}s, "
        f"trace-load {warm.get('trace-load', 0.0):.2f}s)"
    )
    fetch = record["fetch"]
    print(
        f"fetch engines: reference {fetch['reference_seconds']:.2f}s, "
        f"vectorized {fetch['vectorized_seconds']:.2f}s "
        f"({fetch['speedup']:.1f}x, renders "
        f"{'identical' if fetch['renders_identical'] else 'DIVERGED'})"
    )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
