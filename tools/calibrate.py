"""Workload calibration tool.

Searches, per workload, for the mean-procedure-visit-length multiplier
that makes the synthesized trace's MPI in the paper's reference cache
(8 KB, direct-mapped, 32-byte lines) match the paper's Table 4 value.
The resulting multipliers are baked into the workload definitions
(``repro/workloads/ibs.py`` / ``spec.py``) as calibrated
``visit_instructions`` values.

Run from the repository root:

    python tools/calibrate.py [--instructions N] [--suite ibs|spec92]

This is a development tool: the shipped definitions already contain its
output, and ``tests/test_calibration.py`` asserts they still reproduce
the targets.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.caches import CacheGeometry
from repro.core.metrics import measure_mpi as _measure_mpi_runs
from repro.trace import to_line_runs
from repro.workloads import get_workload, synthesize_trace
from repro.workloads.ibs import IBS_WORKLOADS
from repro.workloads.spec import SPEC92_FP_WORKLOADS, SPEC92_INT_WORKLOADS

REFERENCE_CACHE = CacheGeometry(size_bytes=8192, line_size=32, associativity=1)


def measure_mpi(
    workload, n_instructions: int, seeds=(1, 2), cache=REFERENCE_CACHE
) -> float:
    """Mean misses-per-100-instructions over a couple of seeds,
    using the library-wide warmup-window measurement convention."""
    values = []
    for seed in seeds:
        trace = synthesize_trace(workload, n_instructions, seed=seed)
        runs = to_line_runs(trace.ifetch_addresses(), cache.line_size)
        values.append(_measure_mpi_runs(runs, cache).mpi_per_100)
    return float(np.mean(values))


def calibrate_visit_scale(
    workload,
    target_mpi: float,
    n_instructions: int,
    low: float = 0.15,
    high: float = 8.0,
    iterations: int = 12,
    tolerance: float = 0.02,
) -> tuple[float, float]:
    """Bisect the visit-length multiplier so measured MPI hits the target.

    MPI decreases monotonically with visit length, so we bisect on the
    multiplier.  Returns ``(scale, achieved_mpi)``.
    """
    mpi_low = measure_mpi(workload.scaled_visits(low), n_instructions)
    mpi_high = measure_mpi(workload.scaled_visits(high), n_instructions)
    if target_mpi > mpi_low:
        return low, mpi_low
    if target_mpi < mpi_high:
        return high, mpi_high
    for _ in range(iterations):
        mid = float(np.sqrt(low * high))  # geometric bisection
        mpi_mid = measure_mpi(workload.scaled_visits(mid), n_instructions)
        if abs(mpi_mid - target_mpi) / max(target_mpi, 1e-9) < tolerance:
            return mid, mpi_mid
        if mpi_mid > target_mpi:
            low = mid
        else:
            high = mid
    mid = float(np.sqrt(low * high))
    return mid, measure_mpi(workload.scaled_visits(mid), n_instructions)


def run(suite: str, n_instructions: int) -> None:
    if suite == "ibs":
        table = {name: get_workload(name, "mach3") for name in IBS_WORKLOADS}
    elif suite == "spec92":
        table = {**SPEC92_INT_WORKLOADS, **SPEC92_FP_WORKLOADS}
    else:
        raise SystemExit(f"unknown suite {suite!r}")

    results = {}
    for name, workload in table.items():
        target = workload.target_mpi_8kb
        if target is None:
            continue
        base = next(iter(workload.components.values())).visit_instructions
        scale, achieved = calibrate_visit_scale(workload, target, n_instructions)
        results[name] = (scale, base * scale, achieved, target)
        print(
            f"{name:12s} target={target:5.2f} achieved={achieved:5.2f} "
            f"visit_scale={scale:6.3f} visit_instructions={base * scale:7.1f}"
        )
    print("\nvisit_instructions to bake into definitions:")
    for name, (scale, visits, achieved, target) in results.items():
        print(f"    {name!r}: {visits:.1f},")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=400_000)
    parser.add_argument("--suite", default="ibs", choices=["ibs", "spec92"])
    args = parser.parse_args()
    run(args.suite, args.instructions)


if __name__ == "__main__":
    main()
