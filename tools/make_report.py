"""Regenerate every table and figure and write the full report.

Run from the repository root:

    python tools/make_report.py [--instructions N] [--out report.txt]

This is what EXPERIMENTS.md's measured numbers come from.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentSettings


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=400_000)
    parser.add_argument("--out", default="report.txt")
    args = parser.parse_args()

    settings = ExperimentSettings(n_instructions=args.instructions, seed=0)
    sections = []
    for name, module in ALL_EXPERIMENTS.items():
        start = time.time()
        result = module.run(settings)
        elapsed = time.time() - start
        sections.append(result.render())
        print(f"{name}: done in {elapsed:.1f}s")
    with open(args.out, "w") as handle:
        handle.write("\n\n\n".join(sections) + "\n")
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
