"""Legacy setup shim (the environment has no `wheel` package, so the
PEP 517 editable path is unavailable; `pip install -e . --no-build-isolation
--no-use-pep517` uses this instead)."""

from setuptools import setup

setup()
